"""Workload abstraction shared by the seven synthetic benchmarks.

A workload knows how to build a :class:`Program` plus its initial memory
image for a given *input set*, *flags* setting and *scale* factor, and how to
run itself into a :class:`ValueTrace`.  Scale multiplies the loop trip counts
of the workload's kernels, so the dynamic instruction count grows roughly
linearly with it while the static program stays fixed — the same property the
original benchmarks have when given larger inputs.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.isa.machine import ExecutionResult
from repro.isa.memory import SparseMemory
from repro.isa.program import Program
from repro.trace.collector import collect_trace
from repro.trace.stream import ValueTrace


@dataclass
class WorkloadRun:
    """The outcome of executing a workload once."""

    workload: str
    input_name: str
    flags: str
    scale: float
    trace: ValueTrace
    execution: ExecutionResult


class Workload(abc.ABC):
    """Base class for the synthetic SPEC95int workloads.

    Subclasses define:

    * :attr:`name` — the benchmark name used in the paper's tables.
    * :attr:`input_sets` — the named inputs the workload accepts (gcc has
      five, matching Table 6; the others have at least a ``ref`` and a
      ``test`` input).
    * :attr:`flag_sets` — named "compiler flag" settings (gcc has four,
      matching Table 7).
    * :meth:`build` — produce the program and its initial memory image.
    """

    #: Benchmark name (matches the paper's tables, e.g. ``"compress"``).
    name: str = "workload"
    #: Short description of the kernels the workload models.
    description: str = ""
    #: Named input sets; the first is the default ("reference") input.
    input_sets: tuple[str, ...] = ("ref",)
    #: Named flag settings; the first is the default.
    flag_sets: tuple[str, ...] = ("ref",)
    #: Baseline dynamic-instruction budget at scale=1.0 (approximate).
    base_dynamic_instructions: int = 50_000

    # ------------------------------------------------------------------ #
    # Required subclass hook
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def build(self, scale: float, input_name: str, flags: str) -> tuple[Program, SparseMemory]:
        """Return the program and initial memory for one configuration."""

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        scale: float = 1.0,
        input_name: str | None = None,
        flags: str | None = None,
        max_instructions: int | None = None,
    ) -> WorkloadRun:
        """Build, execute and trace the workload."""
        input_name = self.validate_input(input_name)
        flags = self.validate_flags(flags)
        if scale <= 0:
            raise WorkloadError(f"{self.name}: scale must be positive, got {scale}")
        program, memory = self.build(scale, input_name, flags)
        trace, execution = collect_trace(program, memory=memory, max_instructions=max_instructions)
        return WorkloadRun(
            workload=self.name,
            input_name=input_name,
            flags=flags,
            scale=scale,
            trace=trace,
            execution=execution,
        )

    def trace(self, scale: float = 1.0, input_name: str | None = None, flags: str | None = None) -> ValueTrace:
        """Convenience wrapper returning only the value trace."""
        return self.run(scale=scale, input_name=input_name, flags=flags).trace

    # ------------------------------------------------------------------ #
    # Parameter validation helpers
    # ------------------------------------------------------------------ #
    def validate_input(self, input_name: str | None) -> str:
        if input_name is None:
            return self.input_sets[0]
        if input_name not in self.input_sets:
            raise WorkloadError(
                f"{self.name}: unknown input {input_name!r}; expected one of {self.input_sets}"
            )
        return input_name

    def validate_flags(self, flags: str | None) -> str:
        if flags is None:
            return self.flag_sets[0]
        if flags not in self.flag_sets:
            raise WorkloadError(
                f"{self.name}: unknown flags {flags!r}; expected one of {self.flag_sets}"
            )
        return flags

    # ------------------------------------------------------------------ #
    # Shared helpers for subclasses
    # ------------------------------------------------------------------ #
    @staticmethod
    def rng(seed: int) -> random.Random:
        """A deterministic PRNG for generating synthetic input data."""
        return random.Random(seed)

    @staticmethod
    def scaled(count: int, scale: float, minimum: int = 1) -> int:
        """Scale a loop trip count, never dropping below ``minimum``."""
        return max(minimum, int(round(count * scale)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
