"""Synthetic ``130.li`` (xlisp) workload: cons cells, recursion and GC.

The xlisp interpreter running the 7-queens script spends its time allocating
cons cells, recursing over list structures, and periodically garbage
collecting the heap with a mark phase that chases pointers.  The synthetic
version reproduces those kernels:

* cons-cell allocation from a bump pointer (stride address values),
* building and walking list structures with an explicit recursion stack,
* an N-queens style backtracking search driving the allocation, and
* a mark-phase GC walk that chases car/cdr pointers (non-stride loads).
"""

from __future__ import annotations

from repro.isa.memory import SparseMemory
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.base import Workload

HEAP_BASE = 0x10_0000
STACK_BASE = 0x1_0000
MARK_BASE = 0x40_0000
BOARD_BASE = 0x2_0000

#: A cons cell is two words: car (value or pointer) and cdr (pointer).
CELL_SIZE = 16


class XlispWorkload(Workload):
    """Cons allocation, list recursion, backtracking search and GC marking."""

    name = "xlisp"
    description = "cons allocation, n-queens backtracking, mark-phase GC"
    input_sets = ("7-queens", "6-queens")
    flag_sets = ("ref",)
    base_dynamic_instructions = 45_000

    #: (board size, GC trigger in cells, solutions searched) per input set.
    _SHAPE = {"7-queens": (7, 48, 5), "6-queens": (6, 32, 3)}

    def build(self, scale: float, input_name: str, flags: str) -> tuple[Program, SparseMemory]:
        board, gc_trigger, budget = self._SHAPE[input_name]
        # Scale controls how deep into the solution space the search runs.
        budget = self.scaled(budget, scale, minimum=1)
        memory = SparseMemory()
        program = self._build_program(board, gc_trigger, budget)
        return program, memory

    def _build_program(self, board: int, gc_trigger: int, solution_budget: int) -> Program:
        b = ProgramBuilder(self.name)
        r_row, r_board, r_col, r_addr = 1, 2, 3, 4
        r_cond, r_tmp, r_qcol, r_diff = 5, 6, 7, 8
        r_i, r_ok, r_heap, r_cell = 9, 10, 11, 12
        r_sp, r_solutions, r_allocs, r_trigger = 13, 14, 15, 16
        r_ptr, r_mark, r_car, r_cdr = 17, 18, 19, 20
        r_lastcell, r_budget, r_marked = 21, 22, 23

        b.li(r_row, 0, "current row")
        b.li(r_board, board, "board size")
        b.li(r_heap, HEAP_BASE, "heap bump pointer")
        b.li(r_sp, STACK_BASE, "recursion stack pointer")
        b.li(r_solutions, 0, "solutions found")
        b.li(r_allocs, 0, "cells allocated since last GC")
        b.li(r_trigger, gc_trigger, "GC trigger")
        b.li(r_lastcell, 0, "most recent cons cell")
        b.li(r_budget, solution_budget, "solutions to search for")
        # board[row] = column of the queen in that row; start at column 0.
        b.li(r_col, 0, "first column to try")

        place_row = b.label("place_row")
        done = b.fresh_label("done")
        backtrack = b.fresh_label("backtrack")

        # If we've placed queens on all rows, record a solution and backtrack.
        b.slt(r_cond, r_row, r_board, "rows remaining?")
        solution = b.fresh_label("solution")
        b.beq(r_cond, 0, solution)

        try_column = b.fresh_label("try_column")
        b.label(try_column)
        b.slt(r_cond, r_col, r_board, "columns left in this row?")
        b.beq(r_cond, 0, backtrack)

        # --- conflict check against all previously placed rows ---------------
        b.li(r_i, 0, "conflict-scan row")
        b.li(r_ok, 1, "assume placement is safe")
        conflict_loop = b.fresh_label("conflict_loop")
        conflict_done = b.fresh_label("conflict_done")
        b.label(conflict_loop)
        b.slt(r_cond, r_i, r_row, "placed rows left to check?")
        b.beq(r_cond, 0, conflict_done)
        b.sll(r_addr, r_i, 3, "board offset")
        b.addi(r_addr, r_addr, BOARD_BASE, "board address")
        b.lw(r_qcol, r_addr, 0, "column of queen in row i")
        b.seq(r_cond, r_qcol, r_col, "same column?")
        conflict = b.fresh_label("conflict")
        b.bne(r_cond, 0, conflict)
        b.sub(r_diff, r_col, r_qcol, "column distance")
        b.sub(r_tmp, r_row, r_i, "row distance")
        b.seq(r_cond, r_diff, r_tmp, "same rising diagonal?")
        b.bne(r_cond, 0, conflict)
        b.sub(r_diff, r_qcol, r_col, "negative column distance")
        b.seq(r_cond, r_diff, r_tmp, "same falling diagonal?")
        b.bne(r_cond, 0, conflict)
        b.addi(r_i, r_i, 1, "next placed row")
        b.j(conflict_loop)
        b.label(conflict)
        b.li(r_ok, 0, "placement conflicts")
        b.label(conflict_done)

        advance_col = b.fresh_label("advance_col")
        b.beq(r_ok, 0, advance_col)

        # --- safe placement: cons a cell recording (row, col) ----------------
        b.sll(r_addr, r_row, 3, "board offset")
        b.addi(r_addr, r_addr, BOARD_BASE, "board address")
        b.sw(r_col, r_addr, 0, "board[row] = col")
        # cons cell: car = row*16 + col, cdr = previous cell pointer.
        b.mov(r_cell, r_heap, "new cell address")
        b.sll(r_tmp, r_row, 4, "row * 16")
        b.add(r_tmp, r_tmp, r_col, "encode (row, col)")
        b.sw(r_tmp, r_cell, 0, "car = encoded placement")
        b.sw(r_lastcell, r_cell, 8, "cdr = previous cell")
        b.mov(r_lastcell, r_cell, "remember newest cell")
        b.addi(r_heap, r_heap, CELL_SIZE, "bump heap pointer")
        b.addi(r_allocs, r_allocs, 1, "count allocation")

        # Maybe run a GC mark phase.
        no_gc = b.fresh_label("no_gc")
        b.slt(r_cond, r_allocs, r_trigger, "below GC trigger?")
        b.bne(r_cond, 0, no_gc)
        # --- mark phase: chase cdr pointers from the newest cell -------------
        b.mov(r_ptr, r_lastcell, "mark cursor")
        b.li(r_marked, 0, "cells marked this collection")
        mark_loop = b.fresh_label("mark_loop")
        mark_done = b.fresh_label("mark_done")
        b.label(mark_loop)
        b.beq(r_ptr, 0, mark_done)
        b.slt(r_cond, r_marked, r_trigger, "mark budget left?")
        b.beq(r_cond, 0, mark_done)
        b.addi(r_marked, r_marked, 1, "count marked cell")
        b.lw(r_car, r_ptr, 0, "load car")
        b.lw(r_cdr, r_ptr, 8, "load cdr")
        b.sub(r_tmp, r_ptr, 0, "cell address")
        b.srl(r_tmp, r_tmp, 4, "cell index")
        b.andi(r_tmp, r_tmp, 0xFFFF, "bounded mark index")
        b.sll(r_tmp, r_tmp, 3, "mark offset")
        b.addi(r_tmp, r_tmp, MARK_BASE, "mark bitmap address")
        b.ori(r_mark, r_car, 1, "mark value (tagged car)")
        b.sw(r_mark, r_tmp, 0, "set mark")
        b.mov(r_ptr, r_cdr, "follow cdr")
        b.j(mark_loop)
        b.label(mark_done)
        b.li(r_allocs, 0, "reset allocation counter")
        b.label(no_gc)

        # Recurse: push (row, col) and descend to the next row.
        b.sw(r_row, r_sp, 0, "push row")
        b.sw(r_col, r_sp, 8, "push col")
        b.addi(r_sp, r_sp, 16, "grow recursion stack")
        b.addi(r_row, r_row, 1, "next row")
        b.li(r_col, 0, "start at column 0")
        b.j(place_row)

        # --- advance to the next column in this row ---------------------------
        b.label(advance_col)
        b.addi(r_col, r_col, 1, "next column")
        b.j(try_column)

        # --- a full solution was found -----------------------------------------
        b.label(solution)
        b.addi(r_solutions, r_solutions, 1, "count solution")
        b.slt(r_cond, r_solutions, r_budget, "keep searching?")
        b.beq(r_cond, 0, done)
        b.j(backtrack)

        # --- backtrack: pop the last placement and advance its column ----------
        b.label(backtrack)
        b.li(r_tmp, STACK_BASE, "stack floor")
        b.sne(r_cond, r_sp, r_tmp, "anything to pop?")
        b.beq(r_cond, 0, done)
        b.subi(r_sp, r_sp, 16, "pop frame")
        b.lw(r_row, r_sp, 0, "restore row")
        b.lw(r_col, r_sp, 8, "restore col")
        b.addi(r_col, r_col, 1, "advance past the popped column")
        b.j(try_column)

        b.label(done)
        b.sw(r_solutions, 0, BOARD_BASE + 0x800, "store solution count")
        b.halt()
        return b.build()
