"""Synthetic ``099.go`` workload: board-scanning and evaluation kernels.

The real go program repeatedly scans a 19x19 board, counts neighbouring
stones and liberties, hashes local patterns and scores candidate moves.  Its
data-dependent control flow and wide value ranges make it one of the harder
SPEC95int programs for value prediction, a property the synthetic version
reproduces by evaluating many distinct positions whose cell values change
between scans.
"""

from __future__ import annotations

from repro.isa.memory import SparseMemory
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.base import Workload

BOARD_BASE = 0x1_0000
SCORE_BASE = 0x8_0000
PATTERN_BASE = 0xA_0000

#: Board edge length (the real game uses 19).
BOARD_SIZE = 19
BOARD_CELLS = BOARD_SIZE * BOARD_SIZE


class GoWorkload(Workload):
    """Board scans, neighbour counting, liberty estimation, pattern hashing."""

    name = "go"
    description = "19x19 board scans with neighbour counts and pattern hashing"
    input_sets = ("ref", "test")
    flag_sets = ("ref",)
    base_dynamic_instructions = 55_000

    #: Number of candidate positions evaluated at scale = 1.0.  Each position
    #: evaluation scans the full 361-cell board, so a handful of positions is
    #: already tens of thousands of dynamic instructions.
    _POSITIONS = {"ref": 4, "test": 2}

    def build(self, scale: float, input_name: str, flags: str) -> tuple[Program, SparseMemory]:
        # At least two positions are always evaluated: successive board scans
        # are what give go its (limited) context-predictable repetition.
        positions = self.scaled(self._POSITIONS[input_name], scale, minimum=2)
        memory = self._build_memory(input_name)
        program = self._build_program(positions)
        return program, memory

    def _build_memory(self, input_name: str) -> SparseMemory:
        memory = SparseMemory()
        rng = self.rng(seed=0x60 + len(input_name))
        # Board cells: 0 empty, 1 black, 2 white with realistic density.
        for cell in range(BOARD_CELLS):
            roll = rng.random()
            if roll < 0.42:
                stone = 0
            elif roll < 0.72:
                stone = 1
            else:
                stone = 2
            memory.store_word(BOARD_BASE + cell * 8, stone)
        # Zobrist-style pattern keys.
        for cell in range(BOARD_CELLS):
            memory.store_word(PATTERN_BASE + cell * 8, rng.getrandbits(31))
        return memory

    def _build_program(self, positions: int) -> Program:
        b = ProgramBuilder(self.name)
        r_pos, r_positions, r_cell, r_cells = 1, 2, 3, 4
        r_addr, r_stone, r_cond, r_tmp = 5, 6, 7, 8
        r_neighbors, r_liberties, r_score, r_hash = 9, 10, 11, 12
        r_row, r_col, r_friend, r_enemy = 13, 14, 15, 16
        r_key, r_turn, r_best, r_bestcell = 17, 18, 19, 20

        b.li(r_pos, 0, "position counter")
        b.li(r_positions, positions, "positions to evaluate")
        b.li(r_cells, BOARD_CELLS, "board cells")
        b.li(r_turn, 1, "side to move")

        pos_loop = b.label("pos_loop")
        pos_done = b.fresh_label("pos_done")
        b.slt(r_cond, r_pos, r_positions, "positions left?")
        b.beq(r_cond, 0, pos_done)
        b.li(r_best, -1_000_000, "best score so far")
        b.li(r_bestcell, 0, "best cell so far")
        b.li(r_hash, 0, "position hash")
        b.li(r_cell, 0, "cell cursor")

        cell_loop = b.fresh_label("cell_loop")
        cell_done = b.fresh_label("cell_done")
        b.label(cell_loop)
        b.slt(r_cond, r_cell, r_cells, "cells left?")
        b.beq(r_cond, 0, cell_done)
        b.sll(r_addr, r_cell, 3, "cell offset")
        b.addi(r_addr, r_addr, BOARD_BASE, "cell address")
        b.lw(r_stone, r_addr, 0, "stone at cell")

        # Pattern hash is accumulated for every occupied cell.
        skip_hash = b.fresh_label("skip_hash")
        b.beq(r_stone, 0, skip_hash)
        b.sll(r_tmp, r_cell, 3, "pattern offset")
        b.addi(r_tmp, r_tmp, PATTERN_BASE, "pattern address")
        b.lw(r_key, r_tmp, 0, "zobrist key")
        b.xor(r_hash, r_hash, r_key, "hash ^= key")
        b.label(skip_hash)

        # Only empty cells are candidate moves.
        next_cell = b.fresh_label("next_cell")
        b.bne(r_stone, 0, next_cell)

        # Row/column decomposition (div/rem keep MultDiv modestly represented).
        b.li(r_tmp, BOARD_SIZE, "board size")
        b.div(r_row, r_cell, r_tmp, "row = cell / size")
        b.rem(r_col, r_cell, r_tmp, "col = cell % size")

        # Count the four orthogonal neighbours.
        b.li(r_neighbors, 0, "neighbour stones")
        b.li(r_liberties, 0, "empty neighbours")
        b.li(r_friend, 0, "friendly neighbours")
        b.li(r_enemy, 0, "enemy neighbours")
        for delta, guard_reg, guard_value, direction in (
            (-BOARD_SIZE, r_row, 0, "north"),
            (BOARD_SIZE, r_row, BOARD_SIZE - 1, "south"),
            (-1, r_col, 0, "west"),
            (1, r_col, BOARD_SIZE - 1, "east"),
        ):
            skip = b.fresh_label(f"skip_{direction}")
            b.li(r_tmp, guard_value, f"{direction} edge value")
            b.seq(r_cond, guard_reg, r_tmp, f"on {direction} edge?")
            b.bne(r_cond, 0, skip)
            b.addi(r_tmp, r_cell, delta, f"{direction} neighbour index")
            b.sll(r_tmp, r_tmp, 3, "neighbour offset")
            b.addi(r_tmp, r_tmp, BOARD_BASE, "neighbour address")
            b.lw(r_tmp, r_tmp, 0, "neighbour stone")
            b.seq(r_cond, r_tmp, 0, "neighbour empty?")
            b.add(r_liberties, r_liberties, r_cond, "liberties += empty")
            b.sne(r_cond, r_tmp, 0, "neighbour occupied?")
            b.add(r_neighbors, r_neighbors, r_cond, "neighbours += occupied")
            b.seq(r_cond, r_tmp, r_turn, "friendly neighbour?")
            b.add(r_friend, r_friend, r_cond, "friends += match")
            b.label(skip)
        b.sub(r_enemy, r_neighbors, r_friend, "enemies = occupied - friends")

        # Score the move: liberties weigh positively, enemy walls negatively,
        # with a pattern-dependent pseudo-random tweak from the hash.
        b.sll(r_score, r_liberties, 4, "liberties * 16")
        b.sll(r_tmp, r_friend, 2, "friends * 4")
        b.add(r_score, r_score, r_tmp, "score += friends * 4")
        b.sll(r_tmp, r_enemy, 3, "enemies * 8")
        b.sub(r_score, r_score, r_tmp, "score -= enemies * 8")
        b.andi(r_tmp, r_hash, 0xF, "hash tweak")
        b.add(r_score, r_score, r_tmp, "score += tweak")

        better = b.fresh_label("better")
        b.slt(r_cond, r_best, r_score, "new best?")
        b.bne(r_cond, 0, better)
        b.j(next_cell)
        b.label(better)
        b.mov(r_best, r_score, "record best score")
        b.mov(r_bestcell, r_cell, "record best cell")
        b.label(next_cell)
        b.addi(r_cell, r_cell, 1, "next cell")
        b.j(cell_loop)
        b.label(cell_done)

        # Play the chosen move and flip the side to move.
        b.sll(r_addr, r_bestcell, 3, "chosen cell offset")
        b.addi(r_addr, r_addr, BOARD_BASE, "chosen cell address")
        b.sw(r_turn, r_addr, 0, "place stone")
        b.sll(r_tmp, r_pos, 3, "score log offset")
        b.addi(r_tmp, r_tmp, SCORE_BASE, "score log address")
        b.sw(r_best, r_tmp, 0, "log best score")
        b.li(r_tmp, 3, "colour flip constant")
        b.sub(r_turn, r_tmp, r_turn, "swap side to move (1 <-> 2)")
        b.addi(r_pos, r_pos, 1, "next position")
        b.j(pos_loop)
        b.label(pos_done)
        b.halt()
        return b.build()
