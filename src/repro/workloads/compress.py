"""Synthetic ``129.compress`` workload: LZW-style compression kernels.

The real benchmark spends its time hashing (prefix, character) pairs into a
probe table, walking the input buffer byte by byte, and packing variable
width output codes with shifts and masks.  The synthetic version reproduces
those three kernels:

* a byte-wise scan of a pseudo-text input buffer (stride addresses, byte
  values drawn from a skewed alphabet — a repeated non-stride sequence),
* open-addressing hash-table probes with XOR/shift hashing (non-stride load
  values, moderately predictable compare outcomes), and
* output bit-packing with variable shifts and OR accumulation.
"""

from __future__ import annotations

from repro.isa.memory import SparseMemory
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.base import Workload

# Memory layout (byte addresses; words are 8 bytes apart).
INPUT_BASE = 0x1_0000
HTAB_BASE = 0x4_0000
CODETAB_BASE = 0x8_0000
OUTPUT_BASE = 0xC_0000

#: Number of hash-table slots (power of two so masking works).
HASH_SLOTS = 1 << 12
HASH_MASK = (HASH_SLOTS - 1) * 8  # pre-scaled to a word-aligned byte offset

#: First LZW code assigned to a new (prefix, char) pair.
FIRST_FREE_CODE = 257


class CompressWorkload(Workload):
    """LZW-style compression over a synthetic text buffer."""

    name = "compress"
    description = "LZW hashing, input scanning and output bit-packing kernels"
    input_sets = ("ref", "test", "train")
    flag_sets = ("ref",)
    base_dynamic_instructions = 42_000

    #: Input buffer length (bytes) per input set at scale = 1.0.
    _INPUT_LENGTH = {"ref": 460, "test": 200, "train": 320}
    #: Alphabet skew per input set (smaller alphabet => more repetition).
    _ALPHABET = {"ref": 48, "test": 24, "train": 36}
    #: Number of compression passes over the buffer (the reference run
    #: compresses the same data repeatedly at its 30000-e setting, so the
    #: hashing kernels see the same value patterns many times).
    _PASSES = 3

    def build(self, scale: float, input_name: str, flags: str) -> tuple[Program, SparseMemory]:
        length = self.scaled(self._INPUT_LENGTH[input_name], scale, minimum=64)
        memory = self._build_memory(length, input_name)
        program = self._build_program(length, self._PASSES)
        return program, memory

    # ------------------------------------------------------------------ #
    # Input data
    # ------------------------------------------------------------------ #
    def _build_memory(self, length: int, input_name: str) -> SparseMemory:
        memory = SparseMemory()
        rng = self.rng(seed=0xC0 + len(input_name))
        alphabet = self._ALPHABET[input_name]
        # Markov-ish pseudo text: mostly repeats of a small working set of
        # characters with occasional jumps, which is what gives compress its
        # compressible (and value-predictable) input behaviour.
        current = 65
        for index in range(length):
            if rng.random() < 0.35:
                current = 65 + rng.randrange(alphabet)
            elif rng.random() < 0.15:
                current = 32  # space
            memory.store_byte(INPUT_BASE + index * 8, current)
        return memory

    # ------------------------------------------------------------------ #
    # Program
    # ------------------------------------------------------------------ #
    def _build_program(self, length: int, passes: int) -> Program:
        b = ProgramBuilder(self.name)
        # Register conventions for this workload.
        r_index, r_limit, r_addr = 1, 2, 3
        r_char, r_prefix, r_fcode = 4, 5, 6
        r_hash, r_probe, r_loaded = 7, 8, 9
        r_free_code, r_cond, r_tmp = 10, 11, 12
        r_outbuf, r_bitcount, r_nbits = 13, 14, 15
        r_outidx, r_step, r_mask = 16, 17, 18
        r_pass, r_passes = 19, 20

        b.li(r_limit, length, "input length")
        b.li(r_free_code, FIRST_FREE_CODE, "next free code")
        b.li(r_mask, HASH_MASK, "hash mask")
        b.li(r_pass, 0, "compression pass")
        b.li(r_passes, passes, "compression passes")

        pass_loop = b.label("pass_loop")
        end = b.fresh_label("end")
        b.slt(r_cond, r_pass, r_passes, "passes left?")
        b.beq(r_cond, 0, end)
        b.li(r_index, 0, "input cursor")
        b.li(r_prefix, 0, "LZW prefix code")
        b.li(r_outbuf, 0, "output bit accumulator")
        b.li(r_bitcount, 0, "bits accumulated")
        b.li(r_nbits, 9, "current code width")
        b.li(r_outidx, 0, "output word index")

        main_loop = b.fresh_label("main_loop")
        pass_end = b.fresh_label("pass_end")
        b.label(main_loop)
        b.slt(r_cond, r_index, r_limit, "loop guard")
        b.beq(r_cond, 0, pass_end)

        # --- load next character ------------------------------------------------
        b.sll(r_addr, r_index, 3, "byte slot -> address offset")
        b.addi(r_addr, r_addr, INPUT_BASE, "input address")
        b.lb(r_char, r_addr, 0, "c = input[i]")

        # --- form fcode and hash -------------------------------------------------
        b.sll(r_fcode, r_char, 16, "c << 16")
        b.add(r_fcode, r_fcode, r_prefix, "fcode = (c<<16) + prefix")
        b.sll(r_hash, r_char, 8, "c << 8")
        b.xor(r_hash, r_hash, r_prefix, "hash = (c<<8) ^ prefix")
        b.sll(r_hash, r_hash, 3, "scale hash to word offset")
        b.and_(r_hash, r_hash, r_mask, "hash &= mask")

        # --- primary probe --------------------------------------------------------
        b.addi(r_probe, r_hash, HTAB_BASE, "probe address")
        b.lw(r_loaded, r_probe, 0, "htab[hash]")
        b.seq(r_cond, r_loaded, r_fcode, "hit?")
        hit = b.fresh_label("hit")
        b.bne(r_cond, 0, hit)
        b.seq(r_cond, r_loaded, 0, "empty slot?")
        insert = b.fresh_label("insert")
        b.bne(r_cond, 0, insert)

        # --- secondary probe (linear rehash) --------------------------------------
        b.addi(r_step, r_char, 8, "rehash step from character")
        b.sll(r_step, r_step, 3, "scale step")
        b.add(r_hash, r_hash, r_step, "hash += step")
        b.and_(r_hash, r_hash, r_mask, "wrap")
        b.addi(r_probe, r_hash, HTAB_BASE, "probe address")
        b.lw(r_loaded, r_probe, 0, "htab[rehash]")
        b.seq(r_cond, r_loaded, r_fcode, "hit on rehash?")
        b.bne(r_cond, 0, hit)
        b.j(insert)

        # --- hit: follow the chain -------------------------------------------------
        b.label(hit)
        b.addi(r_probe, r_hash, CODETAB_BASE - HTAB_BASE, "code table offset")
        b.addi(r_probe, r_probe, HTAB_BASE, "code table address")
        b.lw(r_prefix, r_probe, 0, "prefix = codetab[hash]")
        continue_label = b.fresh_label("continue")
        b.j(continue_label)

        # --- miss: insert and emit a code -------------------------------------------
        b.label(insert)
        b.addi(r_probe, r_hash, HTAB_BASE, "insert address")
        b.sw(r_fcode, r_probe, 0, "htab[hash] = fcode")
        b.addi(r_probe, r_hash, CODETAB_BASE, "code table address")
        b.sw(r_free_code, r_probe, 0, "codetab[hash] = free code")
        b.addi(r_free_code, r_free_code, 1, "allocate next code")

        # Emit the current prefix into the output bit buffer.
        b.sllv(r_tmp, r_prefix, r_bitcount, "prefix << bitcount")
        b.or_(r_outbuf, r_outbuf, r_tmp, "accumulate output bits")
        b.add(r_bitcount, r_bitcount, r_nbits, "bitcount += nbits")
        b.slti(r_cond, r_bitcount, 32, "buffer full?")
        no_flush = b.fresh_label("no_flush")
        b.bne(r_cond, 0, no_flush)
        b.sll(r_tmp, r_outidx, 3, "output offset")
        b.addi(r_tmp, r_tmp, OUTPUT_BASE, "output address")
        b.sw(r_outbuf, r_tmp, 0, "flush output word")
        b.addi(r_outidx, r_outidx, 1, "next output word")
        b.srl(r_outbuf, r_outbuf, 32, "keep residual bits")
        b.subi(r_bitcount, r_bitcount, 32, "bits remaining")
        b.label(no_flush)
        # Widen the code size as the dictionary grows (rarely taken).
        b.andi(r_tmp, r_free_code, 0x1FF, "dictionary growth check")
        b.sne(r_cond, r_tmp, 0, "not at power-of-two boundary?")
        b.bne(r_cond, 0, continue_label)
        b.addi(r_nbits, r_nbits, 1, "widen output code")

        b.label(continue_label)
        b.mov(r_prefix, r_char, "prefix = c")
        b.addi(r_index, r_index, 1, "advance input cursor")
        b.j(main_loop)

        b.label(pass_end)
        b.addi(r_pass, r_pass, 1, "next compression pass")
        b.j(pass_loop)

        b.label(end)
        b.halt()
        return b.build()
