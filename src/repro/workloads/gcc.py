"""Synthetic ``126.gcc`` workload: compiler front/middle-end kernels.

gcc is the least regular of the SPEC95int programs: it walks heterogeneous
IR structures, dispatches on many token/insn kinds, and touches large hashed
symbol tables.  The synthetic version models four kernels:

* a tokenizer/dispatch loop over a token stream (cascaded compare-and-branch
  dispatch, per-kind handling with different operation mixes),
* an RTL-like pass that walks a linked list of insn nodes, loads their
  fields, performs constant folding, and writes results back,
* register-allocation style bitset manipulation (AND/OR/XOR over word
  arrays), and
* symbol-table string hashing.

The workload exposes the five input files of Table 6 (``jump.i``,
``emit-rtl.i``, ``gcc.i``, ``recog.i``, ``stmt.i``) and the four flag
settings of Table 7 (``none``, ``-O1``, ``-O2``, ``ref``): inputs change the
size and shape of the token stream and IR list, flags change how many
optimisation passes run over the IR.
"""

from __future__ import annotations

from zlib import crc32

from repro.isa.memory import SparseMemory
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.base import Workload

TOKEN_BASE = 0x1_0000
IR_BASE = 0x10_0000
BITSET_BASE = 0x20_0000
SYMTAB_BASE = 0x30_0000
STRING_BASE = 0x40_0000

#: IR node field offsets (in bytes): opcode, src1, src2, dest, next pointer.
NODE_OPCODE, NODE_SRC1, NODE_SRC2, NODE_DEST, NODE_NEXT = 0, 8, 16, 24, 32
NODE_SIZE = 40

#: Number of distinct token kinds the dispatch loop distinguishes.
TOKEN_KINDS = 6


class GccWorkload(Workload):
    """Compiler-style token dispatch, IR rewriting, bitsets and hashing."""

    name = "gcc"
    description = "token dispatch, RTL-style IR passes, bitsets, symbol hashing"
    input_sets = ("gcc.i", "jump.i", "emit-rtl.i", "recog.i", "stmt.i")
    flag_sets = ("ref", "none", "-O1", "-O2")
    base_dynamic_instructions = 62_000

    #: (token stream length, IR node count, symbol count) per input file.
    _INPUT_SHAPE = {
        "jump.i": (300, 110, 60),
        "emit-rtl.i": (340, 130, 70),
        "gcc.i": (400, 150, 80),
        "recog.i": (550, 200, 100),
        "stmt.i": (760, 280, 130),
    }
    #: Number of IR optimisation passes per flag setting.
    _PASSES = {"none": 1, "-O1": 2, "-O2": 3, "ref": 3}
    #: Whether the peephole inner loop runs (models extra -O work).
    _PEEPHOLE = {"none": False, "-O1": False, "-O2": True, "ref": True}

    def build(self, scale: float, input_name: str, flags: str) -> tuple[Program, SparseMemory]:
        tokens, nodes, symbols = self._INPUT_SHAPE[input_name]
        token_count = self.scaled(tokens, scale, minimum=32)
        node_count = self.scaled(nodes, scale, minimum=16)
        symbol_count = self.scaled(symbols, scale, minimum=8)
        memory = self._build_memory(token_count, node_count, symbol_count, input_name)
        program = self._build_program(
            token_count,
            node_count,
            symbol_count,
            passes=self._PASSES[flags],
            peephole=self._PEEPHOLE[flags],
        )
        return program, memory

    # ------------------------------------------------------------------ #
    # Input data
    # ------------------------------------------------------------------ #
    def _build_memory(
        self, token_count: int, node_count: int, symbol_count: int, input_name: str
    ) -> SparseMemory:
        memory = SparseMemory()
        # crc32, not hash(): str hashing is randomized per process
        # (PYTHONHASHSEED), and the trace must be bit-identical across
        # processes for the engine's content-addressed result cache.
        rng = self.rng(seed=crc32(input_name.encode("utf-8")) & 0xFFFF)

        # Token stream: kind in the low bits, payload above.  Kind frequencies
        # are skewed (identifiers and operators dominate) like real source.
        kind_weights = [30, 22, 18, 14, 10, 6][:TOKEN_KINDS]
        population = [kind for kind, weight in enumerate(kind_weights) for _ in range(weight)]
        for index in range(token_count):
            kind = population[rng.randrange(len(population))]
            payload = rng.randrange(1, 200)
            memory.store_word(TOKEN_BASE + index * 8, kind + (payload << 8))

        # IR nodes: a singly linked list laid out contiguously but linked in a
        # shuffled order so the `next` pointers form a non-stride sequence.
        order = list(range(node_count))
        rng.shuffle(order)
        for position, node_index in enumerate(order):
            address = IR_BASE + node_index * NODE_SIZE
            opcode = rng.randrange(8)
            memory.store_word(address + NODE_OPCODE, opcode)
            memory.store_word(address + NODE_SRC1, rng.randrange(0, 64))
            memory.store_word(address + NODE_SRC2, rng.randrange(0, 64))
            memory.store_word(address + NODE_DEST, 0)
            if position + 1 < node_count:
                next_address = IR_BASE + order[position + 1] * NODE_SIZE
            else:
                next_address = 0
            memory.store_word(address + NODE_NEXT, next_address)
        # Record the list head where the program expects it.
        memory.store_word(IR_BASE - 8, IR_BASE + order[0] * NODE_SIZE)

        # Symbol strings: length-prefixed character arrays.
        for index in range(symbol_count):
            length = rng.randrange(3, 12)
            base = STRING_BASE + index * 16 * 8
            memory.store_word(base, length)
            for offset in range(length):
                memory.store_word(base + 8 + offset * 8, 97 + rng.randrange(26))

        # Live-register bitsets.
        for index in range(64):
            memory.store_word(BITSET_BASE + index * 8, rng.getrandbits(32))
            memory.store_word(BITSET_BASE + 0x1000 + index * 8, rng.getrandbits(32))
        return memory

    # ------------------------------------------------------------------ #
    # Program
    # ------------------------------------------------------------------ #
    def _build_program(
        self, token_count: int, node_count: int, symbol_count: int, passes: int, peephole: bool
    ) -> Program:
        b = ProgramBuilder(self.name)
        r_i, r_limit, r_addr, r_tok = 1, 2, 3, 4
        r_kind, r_payload, r_cond, r_acc = 5, 6, 7, 8
        r_node, r_op, r_s1, r_s2 = 9, 10, 11, 12
        r_dest, r_tmp, r_pass, r_passes = 13, 14, 15, 16
        r_hash, r_len, r_chr, r_j = 17, 18, 19, 20
        r_base, r_depth, r_count = 21, 22, 23

        # ================= Kernel 1: token dispatch =================
        # The front end walks the token stream twice (parse, then semantic
        # analysis), as the real compiler re-traverses its input structures.
        b.li(r_pass, 0, "front-end pass")
        b.li(r_passes, 2, "front-end passes")
        fe_loop = b.label("fe_loop")
        fe_done = b.fresh_label("fe_done")
        b.slt(r_cond, r_pass, r_passes, "front-end passes left?")
        b.beq(r_cond, 0, fe_done)
        b.li(r_i, 0, "token cursor")
        b.li(r_limit, token_count, "token count")
        b.li(r_acc, 0, "parser state accumulator")
        b.li(r_depth, 0, "paren depth")
        token_loop = b.fresh_label("token_loop")
        token_done = b.fresh_label("token_done")
        b.label(token_loop)
        b.slt(r_cond, r_i, r_limit, "tokens left?")
        b.beq(r_cond, 0, token_done)
        b.sll(r_addr, r_i, 3, "token offset")
        b.addi(r_addr, r_addr, TOKEN_BASE, "token address")
        b.lw(r_tok, r_addr, 0, "token word")
        b.andi(r_kind, r_tok, 0xFF, "token kind")
        b.srl(r_payload, r_tok, 8, "token payload")

        next_token = b.fresh_label("next_token")
        # Cascaded dispatch on token kind; each arm has a distinct mix.
        kind_labels = [b.fresh_label(f"kind{k}") for k in range(TOKEN_KINDS)]
        for kind, kind_label in enumerate(kind_labels[:-1]):
            b.li(r_tmp, kind, "kind constant")
            b.seq(r_cond, r_kind, r_tmp, "kind match?")
            b.bne(r_cond, 0, kind_label)
        b.j(kind_labels[-1])

        b.label(kind_labels[0])  # identifier: symbol hash contribution
        b.sll(r_tmp, r_payload, 2, "payload << 2")
        b.xor(r_acc, r_acc, r_tmp, "mix into parser state")
        b.addi(r_count, r_count, 1, "identifier count")
        b.j(next_token)
        b.label(kind_labels[1])  # operator: arithmetic on accumulator
        b.add(r_acc, r_acc, r_payload, "acc += payload")
        b.j(next_token)
        b.label(kind_labels[2])  # literal: scale and add
        b.sll(r_tmp, r_payload, 1, "payload * 2")
        b.add(r_acc, r_acc, r_tmp, "acc += payload * 2")
        b.j(next_token)
        b.label(kind_labels[3])  # open bracket: push depth
        b.addi(r_depth, r_depth, 1, "depth++")
        b.j(next_token)
        b.label(kind_labels[4])  # close bracket: pop depth
        b.subi(r_depth, r_depth, 1, "depth--")
        b.slt(r_cond, r_depth, 0, "underflow?")
        b.beq(r_cond, 0, next_token)
        b.li(r_depth, 0, "clamp depth")
        b.j(next_token)
        b.label(kind_labels[5])  # punctuation / other
        b.ori(r_acc, r_acc, 1, "mark statement boundary")
        b.label(next_token)
        b.addi(r_i, r_i, 1, "next token")
        b.j(token_loop)
        b.label(token_done)
        b.addi(r_pass, r_pass, 1, "next front-end pass")
        b.j(fe_loop)
        b.label(fe_done)

        # ================= Kernel 2: IR passes over the insn list =================
        b.li(r_pass, 0, "pass counter")
        b.li(r_passes, passes, "pass budget")
        pass_loop = b.label("pass_loop")
        pass_done = b.fresh_label("pass_done")
        b.slt(r_cond, r_pass, r_passes, "passes left?")
        b.beq(r_cond, 0, pass_done)
        b.li(r_node, IR_BASE - 8, "address of list head")
        b.lw(r_node, r_node, 0, "head pointer")
        walk_loop = b.fresh_label("walk_loop")
        walk_done = b.fresh_label("walk_done")
        b.label(walk_loop)
        b.beq(r_node, 0, walk_done)
        b.lw(r_op, r_node, NODE_OPCODE, "node opcode")
        b.lw(r_s1, r_node, NODE_SRC1, "node src1")
        b.lw(r_s2, r_node, NODE_SRC2, "node src2")
        # Constant folding: a couple of opcode classes, others pass through.
        fold_add = b.fresh_label("fold_add")
        fold_logic = b.fresh_label("fold_logic")
        fold_shift = b.fresh_label("fold_shift")
        fold_store = b.fresh_label("fold_store")
        b.slti(r_cond, r_op, 3, "opcode < 3 -> arithmetic")
        b.bne(r_cond, 0, fold_add)
        b.slti(r_cond, r_op, 5, "opcode < 5 -> logic")
        b.bne(r_cond, 0, fold_logic)
        b.j(fold_shift)
        b.label(fold_add)
        b.add(r_dest, r_s1, r_s2, "fold: src1 + src2")
        b.j(fold_store)
        b.label(fold_logic)
        b.xor(r_dest, r_s1, r_s2, "fold: src1 ^ src2")
        b.j(fold_store)
        b.label(fold_shift)
        b.andi(r_tmp, r_s2, 7, "bounded shift amount")
        b.sllv(r_dest, r_s1, r_tmp, "fold: src1 << (src2 & 7)")
        b.label(fold_store)
        b.sw(r_dest, r_node, NODE_DEST, "write folded value")
        b.lw(r_node, r_node, NODE_NEXT, "follow next pointer")
        b.j(walk_loop)
        b.label(walk_done)

        # Optional peephole kernel: bitset AND/OR scan (register allocation).
        if peephole:
            b.li(r_j, 0, "bitset index")
            b.li(r_tmp, 64, "bitset words")
            peep_loop = b.fresh_label("peep_loop")
            peep_done = b.fresh_label("peep_done")
            b.label(peep_loop)
            b.slt(r_cond, r_j, r_tmp, "bitset words left?")
            b.beq(r_cond, 0, peep_done)
            b.sll(r_addr, r_j, 3, "bitset offset")
            b.addi(r_addr, r_addr, BITSET_BASE, "live set address")
            b.lw(r_s1, r_addr, 0, "live set word")
            b.lw(r_s2, r_addr, 0x1000, "use set word")
            b.and_(r_dest, r_s1, r_s2, "live & use")
            b.or_(r_s1, r_s1, r_s2, "live | use")
            b.sw(r_s1, r_addr, 0, "write back merged set")
            b.nor(r_dest, r_dest, 0, "complement for kill set")
            b.addi(r_j, r_j, 1, "next word")
            b.j(peep_loop)
            b.label(peep_done)

        b.addi(r_pass, r_pass, 1, "pass++")
        b.j(pass_loop)
        b.label(pass_done)

        # ================= Kernel 3: symbol-table hashing =================
        # Symbols are looked up repeatedly across compilation phases; model
        # this with two hashing sweeps over the symbol strings.
        b.li(r_pass, 0, "symbol pass")
        b.li(r_passes, 2, "symbol passes")
        symp_loop = b.label("symp_loop")
        symp_done = b.fresh_label("symp_done")
        b.slt(r_cond, r_pass, r_passes, "symbol passes left?")
        b.beq(r_cond, 0, symp_done)
        b.li(r_i, 0, "symbol index")
        b.li(r_limit, symbol_count, "symbol count")
        sym_loop = b.fresh_label("sym_loop")
        sym_done = b.fresh_label("sym_done")
        b.label(sym_loop)
        b.slt(r_cond, r_i, r_limit, "symbols left?")
        b.beq(r_cond, 0, sym_done)
        b.sll(r_base, r_i, 7, "string slot offset (16 words)")
        b.addi(r_base, r_base, STRING_BASE, "string base address")
        b.lw(r_len, r_base, 0, "string length")
        b.li(r_hash, 5381, "djb2 seed")
        b.li(r_j, 0, "character index")
        chr_loop = b.fresh_label("chr_loop")
        chr_done = b.fresh_label("chr_done")
        b.label(chr_loop)
        b.slt(r_cond, r_j, r_len, "chars left?")
        b.beq(r_cond, 0, chr_done)
        b.sll(r_addr, r_j, 3, "char offset")
        b.add(r_addr, r_addr, r_base, "char address")
        b.lw(r_chr, r_addr, 8, "load character")
        b.sll(r_tmp, r_hash, 5, "hash << 5")
        b.add(r_hash, r_hash, r_tmp, "hash * 33")
        b.add(r_hash, r_hash, r_chr, "+ character")
        b.addi(r_j, r_j, 1, "next character")
        b.j(chr_loop)
        b.label(chr_done)
        b.andi(r_tmp, r_hash, 0x3FF, "bucket index")
        b.sll(r_tmp, r_tmp, 3, "bucket offset")
        b.addi(r_addr, r_tmp, SYMTAB_BASE, "bucket address")
        b.lw(r_s1, r_addr, 0, "bucket occupancy")
        b.addi(r_s1, r_s1, 1, "increment bucket count")
        b.sw(r_s1, r_addr, 0, "write bucket count")
        b.addi(r_i, r_i, 1, "next symbol")
        b.j(sym_loop)
        b.label(sym_done)
        b.addi(r_pass, r_pass, 1, "next symbol pass")
        b.j(symp_loop)
        b.label(symp_done)
        b.halt()
        return b.build()
