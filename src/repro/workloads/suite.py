"""The benchmark suite: registry and whole-suite execution.

:data:`BENCHMARK_ORDER` mirrors the ordering the paper uses on its x-axes
(compress, gcc/cc1, go, ijpeg, m88ksim, perl, xlisp).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import UnknownWorkloadError
from repro.workloads.base import Workload, WorkloadRun
from repro.workloads.compress import CompressWorkload
from repro.workloads.gcc import GccWorkload
from repro.workloads.go import GoWorkload
from repro.workloads.ijpeg import IjpegWorkload
from repro.workloads.m88ksim import M88ksimWorkload
from repro.workloads.perl import PerlWorkload
from repro.workloads.xlisp import XlispWorkload

#: Benchmark order used across the paper's figures.
BENCHMARK_ORDER: tuple[str, ...] = (
    "compress",
    "gcc",
    "go",
    "ijpeg",
    "m88ksim",
    "perl",
    "xlisp",
)

#: The workload registry, keyed by benchmark name.
SUITE: dict[str, Workload] = {
    workload.name: workload
    for workload in (
        CompressWorkload(),
        GccWorkload(),
        GoWorkload(),
        IjpegWorkload(),
        M88ksimWorkload(),
        PerlWorkload(),
        XlispWorkload(),
    )
}


def available_workloads() -> tuple[str, ...]:
    """Return the benchmark names in the paper's presentation order."""
    return BENCHMARK_ORDER


def get_workload(name: str) -> Workload:
    """Look up a workload by benchmark name."""
    try:
        return SUITE[name]
    except KeyError as exc:
        raise UnknownWorkloadError(
            f"unknown workload {name!r}; available: {', '.join(BENCHMARK_ORDER)}"
        ) from exc


def run_suite(
    scale: float = 1.0,
    benchmarks: Iterable[str] | None = None,
) -> dict[str, WorkloadRun]:
    """Run every (or a subset of the) benchmark(s) at the given scale.

    Returns a mapping from benchmark name to its :class:`WorkloadRun`, in the
    paper's presentation order.
    """
    names = tuple(benchmarks) if benchmarks is not None else BENCHMARK_ORDER
    runs: dict[str, WorkloadRun] = {}
    for name in names:
        runs[name] = get_workload(name).run(scale=scale)
    return runs
