"""Synthetic ``134.perl`` workload: interpreter dispatch and hash kernels.

perl's profile is dominated by its bytecode-style op dispatch loop, string
hashing for associative arrays, and string scanning.  The synthetic version
interprets a small op program (arithmetic, push/pop on an operand stack,
associative store/fetch) and hashes a dictionary of synthetic words into a
bucket table, mirroring the ``scrabbl.in`` run used by the paper.
"""

from __future__ import annotations

from repro.isa.memory import SparseMemory
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.base import Workload

OPS_BASE = 0x1_0000
STACK_BASE = 0x2_0000
HASHTAB_BASE = 0x4_0000
WORDS_BASE = 0x8_0000
RESULT_BASE = 0xC_0000

#: Interpreter opcodes.
OP_PUSH, OP_ADD, OP_SUB, OP_DUP, OP_STORE, OP_FETCH = 0, 1, 2, 3, 4, 5

#: Number of hash buckets (power of two).
BUCKETS = 1 << 10


class PerlWorkload(Workload):
    """Bytecode dispatch plus associative-array hashing."""

    name = "perl"
    description = "interpreter op dispatch, operand stack, string hashing"
    input_sets = ("scrabbl", "primes")
    flag_sets = ("ref",)
    base_dynamic_instructions = 36_000

    #: (op-program length, interpretation loops, dictionary words) per input.
    _SHAPE = {"scrabbl": (48, 22, 120), "primes": (32, 12, 40)}

    def build(self, scale: float, input_name: str, flags: str) -> tuple[Program, SparseMemory]:
        program_length, loops, words = self._SHAPE[input_name]
        loops = self.scaled(loops, scale, minimum=2)
        words = self.scaled(words, scale, minimum=8)
        memory = self._build_memory(program_length, words, input_name)
        program = self._build_program(program_length, loops, words)
        return program, memory

    def _build_memory(self, program_length: int, words: int, input_name: str) -> SparseMemory:
        memory = SparseMemory()
        rng = self.rng(seed=0x9E + len(input_name))
        # Op program: opcode in low byte, operand above.  Weighted towards
        # push/add like real interpreter profiles.
        weights = [OP_PUSH] * 4 + [OP_ADD] * 3 + [OP_SUB] * 2 + [OP_DUP] + [OP_STORE] + [OP_FETCH]
        for index in range(program_length):
            opcode = weights[rng.randrange(len(weights))]
            operand = rng.randrange(1, 100)
            memory.store_word(OPS_BASE + index * 8, opcode + (operand << 8))
        # Dictionary words: length-prefixed lowercase strings.
        for index in range(words):
            length = rng.randrange(3, 9)
            base = WORDS_BASE + index * 16 * 8
            memory.store_word(base, length)
            for offset in range(length):
                memory.store_word(base + 8 + offset * 8, 97 + rng.randrange(26))
        return memory

    def _build_program(self, program_length: int, loops: int, words: int) -> Program:
        b = ProgramBuilder(self.name)
        r_loop, r_loops, r_ip, r_oplen = 1, 2, 3, 4
        r_word, r_opcode, r_operand, r_sp = 5, 6, 7, 8
        r_addr, r_a, r_bv, r_cond = 9, 10, 11, 12
        r_tmp, r_hash, r_len, r_chr = 13, 14, 15, 16
        r_widx, r_words, r_j, r_bucket = 17, 18, 19, 20

        # ================= Kernel 1: bytecode interpretation =================
        b.li(r_loop, 0, "interpretation loop counter")
        b.li(r_loops, loops, "interpretation loops")
        b.li(r_oplen, program_length, "op program length")
        b.li(r_sp, STACK_BASE, "operand stack pointer")

        outer_loop = b.label("outer_loop")
        outer_done = b.fresh_label("outer_done")
        b.slt(r_cond, r_loop, r_loops, "loops left?")
        b.beq(r_cond, 0, outer_done)
        b.li(r_ip, 0, "instruction pointer")

        dispatch = b.fresh_label("dispatch")
        program_done = b.fresh_label("program_done")
        b.label(dispatch)
        b.slt(r_cond, r_ip, r_oplen, "ops left?")
        b.beq(r_cond, 0, program_done)
        b.sll(r_addr, r_ip, 3, "op offset")
        b.addi(r_addr, r_addr, OPS_BASE, "op address")
        b.lw(r_word, r_addr, 0, "fetch op word")
        b.andi(r_opcode, r_word, 0xFF, "opcode")
        b.srl(r_operand, r_word, 8, "operand")

        next_op = b.fresh_label("next_op")
        labels = {
            OP_PUSH: b.fresh_label("op_push"),
            OP_ADD: b.fresh_label("op_add"),
            OP_SUB: b.fresh_label("op_sub"),
            OP_DUP: b.fresh_label("op_dup"),
            OP_STORE: b.fresh_label("op_store"),
            OP_FETCH: b.fresh_label("op_fetch"),
        }
        for opcode_value, label in list(labels.items())[:-1]:
            b.li(r_tmp, opcode_value, "opcode constant")
            b.seq(r_cond, r_opcode, r_tmp, "opcode match?")
            b.bne(r_cond, 0, label)
        b.j(labels[OP_FETCH])

        b.label(labels[OP_PUSH])
        b.sw(r_operand, r_sp, 0, "push operand")
        b.addi(r_sp, r_sp, 8, "sp++")
        b.j(next_op)

        b.label(labels[OP_ADD])
        b.subi(r_sp, r_sp, 8, "pop b")
        b.lw(r_bv, r_sp, 0, "b")
        b.subi(r_sp, r_sp, 8, "pop a")
        b.lw(r_a, r_sp, 0, "a")
        b.add(r_a, r_a, r_bv, "a + b")
        b.sw(r_a, r_sp, 0, "push result")
        b.addi(r_sp, r_sp, 8, "sp++")
        b.j(next_op)

        b.label(labels[OP_SUB])
        b.subi(r_sp, r_sp, 8, "pop b")
        b.lw(r_bv, r_sp, 0, "b")
        b.subi(r_sp, r_sp, 8, "pop a")
        b.lw(r_a, r_sp, 0, "a")
        b.sub(r_a, r_a, r_bv, "a - b")
        b.sw(r_a, r_sp, 0, "push result")
        b.addi(r_sp, r_sp, 8, "sp++")
        b.j(next_op)

        b.label(labels[OP_DUP])
        b.lw(r_a, r_sp, -8, "top of stack")
        b.sw(r_a, r_sp, 0, "duplicate")
        b.addi(r_sp, r_sp, 8, "sp++")
        b.j(next_op)

        b.label(labels[OP_STORE])
        b.subi(r_sp, r_sp, 8, "pop value")
        b.lw(r_a, r_sp, 0, "value")
        b.andi(r_tmp, r_operand, 0x3F, "variable slot")
        b.sll(r_tmp, r_tmp, 3, "slot offset")
        b.addi(r_addr, r_tmp, RESULT_BASE, "variable address")
        b.sw(r_a, r_addr, 0, "store variable")
        b.j(next_op)

        b.label(labels[OP_FETCH])
        b.andi(r_tmp, r_operand, 0x3F, "variable slot")
        b.sll(r_tmp, r_tmp, 3, "slot offset")
        b.addi(r_addr, r_tmp, RESULT_BASE, "variable address")
        b.lw(r_a, r_addr, 0, "fetch variable")
        b.sw(r_a, r_sp, 0, "push variable")
        b.addi(r_sp, r_sp, 8, "sp++")

        b.label(next_op)
        b.addi(r_ip, r_ip, 1, "next op")
        b.j(dispatch)
        b.label(program_done)
        # Guard against stack creep across interpretation loops.
        b.li(r_sp, STACK_BASE, "reset operand stack")
        b.addi(r_loop, r_loop, 1, "next interpretation loop")
        b.j(outer_loop)
        b.label(outer_done)

        # ================= Kernel 2: dictionary hashing =================
        b.li(r_widx, 0, "word index")
        b.li(r_words, words, "word count")
        word_loop = b.label("word_loop")
        word_done = b.fresh_label("word_done")
        b.slt(r_cond, r_widx, r_words, "words left?")
        b.beq(r_cond, 0, word_done)
        b.sll(r_addr, r_widx, 7, "word slot offset")
        b.addi(r_addr, r_addr, WORDS_BASE, "word base address")
        b.lw(r_len, r_addr, 0, "word length")
        b.li(r_hash, 0, "hash accumulator")
        b.li(r_j, 0, "character index")
        hash_loop = b.fresh_label("hash_loop")
        hash_done = b.fresh_label("hash_done")
        b.label(hash_loop)
        b.slt(r_cond, r_j, r_len, "characters left?")
        b.beq(r_cond, 0, hash_done)
        b.sll(r_tmp, r_j, 3, "character offset")
        b.add(r_tmp, r_tmp, r_addr, "character address")
        b.lw(r_chr, r_tmp, 8, "character")
        b.sll(r_tmp, r_hash, 4, "hash << 4")
        b.add(r_hash, r_tmp, r_chr, "hash = (hash<<4) + c")
        b.srl(r_tmp, r_hash, 12, "overflow bits")
        b.xor(r_hash, r_hash, r_tmp, "fold overflow")
        b.addi(r_j, r_j, 1, "next character")
        b.j(hash_loop)
        b.label(hash_done)
        b.andi(r_bucket, r_hash, BUCKETS - 1, "bucket index")
        b.sll(r_bucket, r_bucket, 3, "bucket offset")
        b.addi(r_bucket, r_bucket, HASHTAB_BASE, "bucket address")
        b.lw(r_tmp, r_bucket, 0, "bucket count")
        b.addi(r_tmp, r_tmp, 1, "increment")
        b.sw(r_tmp, r_bucket, 0, "write back bucket count")
        b.addi(r_widx, r_widx, 1, "next word")
        b.j(word_loop)
        b.label(word_done)
        b.halt()
        return b.build()
