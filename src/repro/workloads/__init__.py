"""Synthetic SPEC95int-like workloads (the paper's benchmark substitute).

The paper traces seven integer SPEC95 programs through SimpleScalar.  Those
binaries and inputs are not redistributable, so this package provides seven
synthetic workloads — one per SPEC95int benchmark — written against the
:mod:`repro.isa` program builder.  Each mimics the dominant kernels of its
namesake (hashing for compress, IR walking and jump-table dispatch for gcc,
board evaluation for go, DCT-style block transforms for ijpeg, a
fetch/decode/execute loop for m88ksim, string hashing and bytecode dispatch
for perl, cons-cell recursion and garbage collection for xlisp), so the
per-category instruction mixes and the classes of value sequences the
predictors see match the behaviour the paper reports.
"""

from repro.workloads.base import Workload, WorkloadRun
from repro.workloads.compress import CompressWorkload
from repro.workloads.gcc import GccWorkload
from repro.workloads.go import GoWorkload
from repro.workloads.ijpeg import IjpegWorkload
from repro.workloads.m88ksim import M88ksimWorkload
from repro.workloads.perl import PerlWorkload
from repro.workloads.xlisp import XlispWorkload
from repro.workloads.suite import (
    SUITE,
    BENCHMARK_ORDER,
    get_workload,
    available_workloads,
    run_suite,
)

__all__ = [
    "Workload",
    "WorkloadRun",
    "CompressWorkload",
    "GccWorkload",
    "GoWorkload",
    "IjpegWorkload",
    "M88ksimWorkload",
    "PerlWorkload",
    "XlispWorkload",
    "SUITE",
    "BENCHMARK_ORDER",
    "get_workload",
    "available_workloads",
    "run_suite",
]
