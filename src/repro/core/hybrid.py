"""Hybrid value predictors (the direction motivated by Section 4.2).

The paper's set-correlation analysis (Figure 8) shows that a stride predictor
captures most correct predictions cheaply while an FCM predictor contributes
a further ~20% that nothing else catches, and its Figure 9 shows the FCM
advantage is concentrated in a small fraction of static instructions.  Both
observations point at hybrid predictors with a chooser.  This module provides
that construction:

* :class:`PcChooser` — per-PC saturating scores, one per component, trained
  on which component has been correct at that PC (the analogue of
  McFarling-style choosers for branch predictors).
* :class:`CategoryChooser` — a static mapping from instruction category to
  component (e.g. stride for AddSub, FCM for everything else), following the
  paper's observation that computational predictors work best when their
  operation matches the instruction's operation.
* :class:`OracleChooser` — an idealised chooser that always picks a correct
  component when one exists; it bounds what any hybrid of the given
  components could achieve.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.core.base import NO_PREDICTION, Prediction, ValuePredictor
from repro.errors import PredictorConfigError
from repro.isa.opcodes import Category


class ChooserPolicy(abc.ABC):
    """Selects which component of a hybrid supplies the prediction."""

    @abc.abstractmethod
    def select(
        self, pc: int, category: Category | None, predictions: Sequence[Prediction]
    ) -> int:
        """Return the index of the component whose prediction to use."""

    def train(
        self,
        pc: int,
        category: Category | None,
        predictions: Sequence[Prediction],
        actual: int,
    ) -> None:
        """Observe the true value and adapt future selections (optional)."""

    def reset(self) -> None:
        """Forget any learned selection state (optional)."""


@dataclass
class _ScoreEntry:
    scores: list[int]


class PcChooser(ChooserPolicy):
    """Per-PC saturating scores; the highest-scoring component is chosen.

    Ties are broken in favour of the *earlier* component in the hybrid's
    component list, so putting the cheaper predictor first expresses the
    paper's "use stride for most predictions, fcm for the rest" strategy.
    """

    def __init__(self, num_components: int, score_max: int = 7) -> None:
        if num_components < 2:
            raise PredictorConfigError("a chooser needs at least two components")
        if score_max < 1:
            raise PredictorConfigError("score_max must be positive")
        self.num_components = num_components
        self.score_max = score_max
        self._table: dict[int, _ScoreEntry] = {}

    def select(
        self, pc: int, category: Category | None, predictions: Sequence[Prediction]
    ) -> int:
        entry = self._table.get(pc)
        if entry is None:
            return 0
        best_index = 0
        best_score = entry.scores[0]
        for index in range(1, len(entry.scores)):
            if entry.scores[index] > best_score:
                best_index, best_score = index, entry.scores[index]
        return best_index

    def train(
        self,
        pc: int,
        category: Category | None,
        predictions: Sequence[Prediction],
        actual: int,
    ) -> None:
        entry = self._table.get(pc)
        if entry is None:
            entry = _ScoreEntry(scores=[0] * self.num_components)
            self._table[pc] = entry
        for index, prediction in enumerate(predictions):
            if prediction.is_correct(actual):
                entry.scores[index] = min(self.score_max, entry.scores[index] + 1)
            else:
                entry.scores[index] = max(0, entry.scores[index] - 1)

    def reset(self) -> None:
        self._table.clear()

    def table_entries(self) -> int:
        return len(self._table)


class CategoryChooser(ChooserPolicy):
    """Choose the component statically by instruction category."""

    def __init__(self, mapping: dict[Category, int], default: int = 0) -> None:
        if default < 0:
            raise PredictorConfigError("default component index must be non-negative")
        self.mapping = dict(mapping)
        self.default = default

    def select(
        self, pc: int, category: Category | None, predictions: Sequence[Prediction]
    ) -> int:
        if category is None:
            return self.default
        return self.mapping.get(category, self.default)


class OracleChooser(ChooserPolicy):
    """Idealised chooser: the hybrid is correct if *any* component is.

    ``select`` cannot see the actual value, so outside of
    :meth:`HybridPredictor.observe` it simply returns the first confident
    component; the oracle behaviour applies to accuracy accounting only.
    """

    def select(
        self, pc: int, category: Category | None, predictions: Sequence[Prediction]
    ) -> int:
        for index, prediction in enumerate(predictions):
            if prediction.confident:
                return index
        return 0


@dataclass
class HybridComponent:
    """A named component of a hybrid predictor."""

    name: str
    predictor: ValuePredictor
    selections: int = 0
    correct_when_selected: int = 0


class HybridPredictor(ValuePredictor):
    """Combine several component predictors through a chooser policy."""

    def __init__(
        self,
        components: Sequence[ValuePredictor],
        chooser: ChooserPolicy,
        name: str | None = None,
    ) -> None:
        super().__init__()
        if len(components) < 2:
            raise PredictorConfigError("a hybrid predictor needs at least two components")
        self.components = [
            HybridComponent(name=component.name, predictor=component) for component in components
        ]
        self.chooser = chooser
        self.name = name or "hybrid-" + "+".join(component.name for component in components)

    # ------------------------------------------------------------------ #
    # ValuePredictor interface
    # ------------------------------------------------------------------ #
    def predict(self, pc: int, category: Category | None = None) -> Prediction:
        predictions = [
            component.predictor.predict(pc, category) for component in self.components
        ]
        index = self.chooser.select(pc, category, predictions)
        if not 0 <= index < len(predictions):
            return NO_PREDICTION
        return predictions[index]

    def update(self, pc: int, actual: int, category: Category | None = None) -> None:
        predictions = [
            component.predictor.predict(pc, category) for component in self.components
        ]
        self.chooser.train(pc, category, predictions, actual)
        for component in self.components:
            component.predictor.update(pc, actual, category)

    def observe(self, pc: int, actual: int, category: Category | None = None) -> bool:
        predictions = [
            component.predictor.predict(pc, category) for component in self.components
        ]
        if isinstance(self.chooser, OracleChooser):
            correct = any(prediction.is_correct(actual) for prediction in predictions)
            chosen = Prediction(actual) if correct else NO_PREDICTION
            selected_index = next(
                (i for i, p in enumerate(predictions) if p.is_correct(actual)),
                0,
            )
        else:
            selected_index = self.chooser.select(pc, category, predictions)
            chosen = predictions[selected_index]
            correct = chosen.is_correct(actual)
        component = self.components[selected_index]
        component.selections += 1
        if correct:
            component.correct_when_selected += 1
        self.stats.record(chosen, actual, category)
        self.stats.updates += 1
        self.chooser.train(pc, category, predictions, actual)
        for entry in self.components:
            entry.predictor.update(pc, actual, category)
        return correct

    def table_entries(self) -> int:
        return max(component.predictor.table_entries() for component in self.components)

    def storage_cells(self) -> int:
        return sum(component.predictor.storage_cells() for component in self.components)

    def _reset_tables(self) -> None:
        for component in self.components:
            component.predictor.reset()
            component.selections = 0
            component.correct_when_selected = 0
        self.chooser.reset()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def selection_breakdown(self) -> dict[str, int]:
        """How many times each component was chosen (via :meth:`observe`)."""
        return {component.name: component.selections for component in self.components}
