"""Blended finite context method prediction with lazy exclusion.

This is the context-based configuration the paper actually simulates: an
"order-*k* fcm" combines component models of orders *k* down to 0.  The
prediction comes from the *highest*-order model whose current context has
been observed before (a context match); this combination of multiple orders
is called *blending* in the text-compression literature the paper draws on.

Updating uses *lazy exclusion*: only the model that supplied the match and
all higher-order models have their counts updated.  Lower-order models are
left untouched, so their statistics are not polluted by values that a longer
context already explains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.base import NO_PREDICTION, Prediction, ValuePredictor
from repro.core.fcm import select_maximum_count
from repro.errors import PredictorConfigError
from repro.isa.opcodes import Category


@dataclass
class _BlendedEntry:
    """Per-PC state: one shared history plus one table per order."""

    history: list[int] = field(default_factory=list)
    # tables[o] maps a length-o context tuple to {next value -> count}.
    tables: list[dict[tuple[int, ...], dict[int, int]]] = field(default_factory=list)
    recent: list[dict[tuple[int, ...], int]] = field(default_factory=list)


class BlendedFcmPredictor(ValuePredictor):
    """FCM predictor blending orders 0..``order`` with lazy exclusion.

    Parameters
    ----------
    order:
        The highest (and dominant) context order.  The paper reports results
        for orders 1, 2 and 3 and a sensitivity sweep up to 8.
    counter_max:
        ``None`` keeps exact counts (the paper's configuration); a positive
        integer enables the halve-on-saturation small-counter variant.
    update_policy:
        ``"lazy-exclusion"`` (default, the paper's configuration) updates the
        matched order and all higher orders; ``"full"`` updates every order
        on every value (full blending).
    """

    UPDATE_POLICIES = ("lazy-exclusion", "full")

    def __init__(
        self,
        order: int,
        counter_max: int | None = None,
        update_policy: str = "lazy-exclusion",
    ) -> None:
        super().__init__()
        if order < 0:
            raise PredictorConfigError("order must be non-negative")
        if counter_max is not None and counter_max < 2:
            raise PredictorConfigError("counter_max must be at least 2 when given")
        if update_policy not in self.UPDATE_POLICIES:
            raise PredictorConfigError(
                f"unknown update policy {update_policy!r}; expected one of {self.UPDATE_POLICIES}"
            )
        self.order = order
        self.counter_max = counter_max
        self.update_policy = update_policy
        self.name = f"fcm{order}"
        self._table: dict[int, _BlendedEntry] = {}

    # ------------------------------------------------------------------ #
    # ValuePredictor interface
    # ------------------------------------------------------------------ #
    def predict(self, pc: int, category: Category | None = None) -> Prediction:
        entry = self._table.get(pc)
        if entry is None:
            return NO_PREDICTION
        matched_order, counts, recent = self._match(entry)
        if counts is None:
            return NO_PREDICTION
        return Prediction(select_maximum_count(counts, recent))

    def update(self, pc: int, actual: int, category: Category | None = None) -> None:
        entry = self._table.get(pc)
        if entry is None:
            entry = _BlendedEntry(
                tables=[{} for _ in range(self.order + 1)],
                recent=[{} for _ in range(self.order + 1)],
            )
            self._table[pc] = entry

        if self.update_policy == "full":
            lowest_order_to_update = 0
        else:
            matched_order, counts, _ = self._match(entry)
            lowest_order_to_update = matched_order if counts is not None else 0

        history = entry.history
        for model_order in range(lowest_order_to_update, self.order + 1):
            if len(history) < model_order:
                continue
            context = tuple(history[-model_order:]) if model_order else ()
            counts = entry.tables[model_order].setdefault(context, {})
            counts[actual] = counts.get(actual, 0) + 1
            entry.recent[model_order][context] = actual
            if self.counter_max is not None and counts[actual] >= self.counter_max:
                for value in list(counts):
                    counts[value] = max(1, counts[value] // 2)

        history.append(actual)
        if len(history) > self.order:
            del history[: len(history) - self.order]

    def table_entries(self) -> int:
        return len(self._table)

    def storage_cells(self) -> int:
        cells = 0
        for entry in self._table.values():
            cells += len(entry.history)
            for table in entry.tables:
                for counts in table.values():
                    cells += 2 * len(counts)
        return cells

    def _reset_tables(self) -> None:
        self._table.clear()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def matched_order(self, pc: int) -> int | None:
        """Return the order that would supply the next prediction for ``pc``."""
        entry = self._table.get(pc)
        if entry is None:
            return None
        order, counts, _ = self._match(entry)
        return order if counts is not None else None

    def contexts_for(self, pc: int, order: int) -> dict[tuple[int, ...], dict[int, int]]:
        """Return a copy of the order-``order`` context table for ``pc``."""
        entry = self._table.get(pc)
        if entry is None or order > self.order:
            return {}
        return {context: dict(counts) for context, counts in entry.tables[order].items()}

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _match(
        self, entry: _BlendedEntry
    ) -> tuple[int, dict[int, int] | None, int | None]:
        """Find the highest-order context with recorded counts."""
        history = entry.history
        for model_order in range(min(self.order, len(history)), -1, -1):
            context = tuple(history[-model_order:]) if model_order else ()
            counts = entry.tables[model_order].get(context)
            if counts:
                return model_order, counts, entry.recent[model_order].get(context)
        return 0, None, None
