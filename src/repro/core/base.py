"""Common interface for all value predictors.

The paper restricts predictors to a fundamental class: the prediction table
is indexed only by the program counter of the instruction being predicted,
tables are unbounded (no aliasing between static instructions), and tables
are updated immediately with the correct value after every prediction.  The
:class:`ValuePredictor` interface encodes exactly that contract.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field

from repro.isa.opcodes import Category


def config_signature_of(obj: object) -> str:
    """Canonical signature of an object's *configuration*.

    Walks public attributes (skipping learned tables, which are
    underscore-prefixed by convention, and runtime ``stats``) and renders
    them deterministically.  Two predictor instances produce the same
    signature exactly when they are configured identically, so the string
    is usable as a cache-key component — see :mod:`repro.engine`.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return repr(obj)
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(config_signature_of(item) for item in obj) + "]"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(config_signature_of(item) for item in obj)) + "}"
    if isinstance(obj, dict):
        items = sorted(
            (config_signature_of(key), config_signature_of(value))
            for key, value in obj.items()
        )
        return "{" + ",".join(f"{key}:{value}" for key, value in items) + "}"
    parts = [
        f"{attr}={config_signature_of(value)}"
        for attr, value in sorted(vars(obj).items())
        if not attr.startswith("_") and attr != "stats"
    ]
    return f"{type(obj).__name__}({','.join(parts)})"


@dataclass(frozen=True)
class Prediction:
    """Outcome of querying a predictor for one dynamic instruction.

    Attributes
    ----------
    value:
        The predicted value, or ``None`` when the predictor declines to
        predict (e.g. an FCM predictor whose context has never been seen).
    confident:
        ``True`` when a concrete value was produced.  A ``None`` value is
        always counted as an incorrect prediction by the simulator, matching
        the paper's accounting (accuracy = correct predictions / all
        predicted instructions).
    """

    value: int | None

    @property
    def confident(self) -> bool:
        return self.value is not None

    def is_correct(self, actual: int) -> bool:
        """Return ``True`` if this prediction matches the actual value."""
        return self.value is not None and self.value == actual


#: Singleton used when a predictor has nothing to say.
NO_PREDICTION = Prediction(value=None)


@dataclass
class PredictorStats:
    """Lightweight self-reported statistics for a predictor instance."""

    lookups: int = 0
    updates: int = 0
    correct: int = 0
    no_prediction: int = 0
    per_category_correct: dict[Category, int] = field(default_factory=dict)
    per_category_lookups: dict[Category, int] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        """Fraction of lookups that produced a correct prediction."""
        if self.lookups == 0:
            return 0.0
        return self.correct / self.lookups

    def record(self, prediction: Prediction, actual: int, category: Category | None) -> bool:
        """Account for one prediction/outcome pair; returns correctness."""
        self.lookups += 1
        correct = prediction.is_correct(actual)
        if correct:
            self.correct += 1
        if not prediction.confident:
            self.no_prediction += 1
        if category is not None:
            self.per_category_lookups[category] = self.per_category_lookups.get(category, 0) + 1
            if correct:
                self.per_category_correct[category] = (
                    self.per_category_correct.get(category, 0) + 1
                )
        return correct


class ValuePredictor(abc.ABC):
    """Abstract base class for PC-indexed, unbounded value predictors."""

    #: Short machine-readable name, overridden by subclasses.
    name: str = "predictor"

    def __init__(self) -> None:
        self.stats = PredictorStats()

    # ------------------------------------------------------------------ #
    # Core interface
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def predict(self, pc: int, category: Category | None = None) -> Prediction:
        """Return the prediction for the next value produced at ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, actual: int, category: Category | None = None) -> None:
        """Update the table entry for ``pc`` with the true value ``actual``."""

    def observe(self, pc: int, actual: int, category: Category | None = None) -> bool:
        """Predict, score, and immediately update — one trace record.

        This is the paper's simulation loop for a single dynamic instruction:
        the prediction is made, compared against the actual value, and the
        table is updated immediately with the actual value.  Returns whether
        the prediction was correct.
        """
        prediction = self.predict(pc, category)
        correct = self.stats.record(prediction, actual, category)
        self.stats.updates += 1
        self.update(pc, actual, category)
        return correct

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def table_entries(self) -> int:
        """Number of per-PC table entries currently allocated."""

    def storage_cells(self) -> int:
        """Rough count of stored scalar cells (values, strides, counters).

        Used by capacity-oriented analyses; subclasses override when they
        keep more than one cell per entry.
        """
        return self.table_entries()

    def config_signature(self) -> str:
        """Canonical description of this predictor's configuration.

        Covers class, parameters and (for hybrids) component structure, but
        no learned state; equal signatures mean interchangeable predictors.
        """
        return config_signature_of(self)

    def reset(self) -> None:
        """Forget all learned state and statistics."""
        self.stats = PredictorStats()
        self._reset_tables()

    @abc.abstractmethod
    def _reset_tables(self) -> None:
        """Subclass hook: clear prediction tables."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, entries={self.table_entries()})"
