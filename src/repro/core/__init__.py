"""Value predictors — the paper's primary contribution.

Two families are implemented, exactly following Section 2 of the paper:

* **Computational predictors** compute the next value from previous values:
  :class:`LastValuePredictor` (identity function, with optional hysteresis)
  and the stride family (:class:`SimpleStridePredictor`,
  :class:`CounterStridePredictor`, :class:`TwoDeltaStridePredictor`).
* **Context-based predictors** learn which values follow a finite ordered
  sequence of previous values: :class:`FcmPredictor` (a single order-*k*
  finite context method) and :class:`BlendedFcmPredictor` (orders 0..*k*
  combined with blending and lazy exclusion — the configuration the paper
  simulates).

:class:`HybridPredictor` combines component predictors through a chooser, the
direction the paper's Section 4.2 motivates for future work.

All predictors are *unbounded* (one table entry per static PC, no aliasing)
and are updated immediately with the true value after each prediction,
matching the paper's idealised methodology.
"""

from repro.core.base import ValuePredictor, Prediction, PredictorStats
from repro.core.last_value import LastValuePredictor
from repro.core.stride import (
    SimpleStridePredictor,
    CounterStridePredictor,
    TwoDeltaStridePredictor,
)
from repro.core.fcm import FcmPredictor
from repro.core.blending import BlendedFcmPredictor
from repro.core.hybrid import (
    HybridPredictor,
    ChooserPolicy,
    PcChooser,
    CategoryChooser,
    OracleChooser,
)
from repro.core.registry import (
    available_predictors,
    create_predictor,
    register_predictor,
    PAPER_PREDICTORS,
)

__all__ = [
    "ValuePredictor",
    "Prediction",
    "PredictorStats",
    "LastValuePredictor",
    "SimpleStridePredictor",
    "CounterStridePredictor",
    "TwoDeltaStridePredictor",
    "FcmPredictor",
    "BlendedFcmPredictor",
    "HybridPredictor",
    "ChooserPolicy",
    "PcChooser",
    "CategoryChooser",
    "OracleChooser",
    "available_predictors",
    "create_predictor",
    "register_predictor",
    "PAPER_PREDICTORS",
]
