"""Finite context method (FCM) prediction (Section 2.2 of the paper).

An order-*k* FCM predictor keeps, for each static instruction, the *k* most
recently produced values (the *context*) and a table of counters recording
which values have followed each context.  The prediction is the value with
the maximum count for the current context.  The paper's simulated
configuration maintains *exact* counts; the small-saturating-counter variant
(counts halved when one reaches a maximum, weighting recent history more
heavily) is also implemented for the ablation benchmarks.

Contexts are formed by *full concatenation* of the history values — i.e. the
context key is the exact tuple of previous values, so there is no context
aliasing, matching the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.base import NO_PREDICTION, Prediction, ValuePredictor
from repro.errors import PredictorConfigError
from repro.isa.opcodes import Category


@dataclass
class _FcmEntry:
    """Per-PC state of an order-k FCM predictor."""

    history: list[int] = field(default_factory=list)
    # context tuple -> {next value -> count}
    counts: dict[tuple[int, ...], dict[int, int]] = field(default_factory=dict)
    # context tuple -> value most recently observed after that context
    # (used to break count ties deterministically in favour of recency).
    recent: dict[tuple[int, ...], int] = field(default_factory=dict)


def select_maximum_count(counts: dict[int, int], recent_value: int | None) -> int:
    """Return the value with the maximum count, preferring the most recent on ties."""
    best_value = None
    best_count = -1
    for value, count in counts.items():
        if count > best_count:
            best_value, best_count = value, count
        elif count == best_count and recent_value is not None and value == recent_value:
            best_value = value
    return best_value


class FcmPredictor(ValuePredictor):
    """A single, fixed-order finite context method predictor.

    Parameters
    ----------
    order:
        Number of preceding values forming the context (>= 0).  Order 0
        degenerates to a per-PC frequency count over all produced values.
    counter_max:
        ``None`` keeps exact counts (the paper's configuration).  A positive
        integer enables the small-counter variant: when any count for a
        context reaches ``counter_max``, every count for that context is
        halved, giving more weight to recent history.
    """

    def __init__(self, order: int, counter_max: int | None = None) -> None:
        super().__init__()
        if order < 0:
            raise PredictorConfigError("order must be non-negative")
        if counter_max is not None and counter_max < 2:
            raise PredictorConfigError("counter_max must be at least 2 when given")
        self.order = order
        self.counter_max = counter_max
        self.name = f"fcm{order}-single"
        self._table: dict[int, _FcmEntry] = {}

    # ------------------------------------------------------------------ #
    # ValuePredictor interface
    # ------------------------------------------------------------------ #
    def predict(self, pc: int, category: Category | None = None) -> Prediction:
        entry = self._table.get(pc)
        if entry is None or len(entry.history) < self.order:
            return NO_PREDICTION
        context = tuple(entry.history[-self.order :]) if self.order else ()
        counts = entry.counts.get(context)
        if not counts:
            return NO_PREDICTION
        return Prediction(select_maximum_count(counts, entry.recent.get(context)))

    def update(self, pc: int, actual: int, category: Category | None = None) -> None:
        entry = self._table.get(pc)
        if entry is None:
            entry = _FcmEntry()
            self._table[pc] = entry
        if len(entry.history) >= self.order:
            context = tuple(entry.history[-self.order :]) if self.order else ()
            counts = entry.counts.setdefault(context, {})
            counts[actual] = counts.get(actual, 0) + 1
            entry.recent[context] = actual
            if self.counter_max is not None and counts[actual] >= self.counter_max:
                for value in list(counts):
                    counts[value] = max(1, counts[value] // 2)
        self._push_history(entry, actual)

    def table_entries(self) -> int:
        return len(self._table)

    def storage_cells(self) -> int:
        cells = 0
        for entry in self._table.values():
            cells += len(entry.history)
            for counts in entry.counts.values():
                cells += 2 * len(counts)
        return cells

    def _reset_tables(self) -> None:
        self._table.clear()

    # ------------------------------------------------------------------ #
    # Introspection used by analyses and tests
    # ------------------------------------------------------------------ #
    def contexts_for(self, pc: int) -> dict[tuple[int, ...], dict[int, int]]:
        """Return a copy of the context->counts table for one static PC."""
        entry = self._table.get(pc)
        if entry is None:
            return {}
        return {context: dict(counts) for context, counts in entry.counts.items()}

    def history_for(self, pc: int) -> tuple[int, ...]:
        """Return the current history (most recent last) for one static PC."""
        entry = self._table.get(pc)
        if entry is None:
            return ()
        return tuple(entry.history)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _push_history(self, entry: _FcmEntry, actual: int) -> None:
        history = entry.history
        history.append(actual)
        if len(history) > self.order:
            del history[: len(history) - self.order]
