"""Stride prediction (Section 2.1 of the paper).

A stride predictor predicts ``last_value + stride``.  Three update policies
from the paper are implemented:

* :class:`SimpleStridePredictor` — the stride is always the difference of the
  two most recent values (no hysteresis).  On a repeated stride sequence this
  mispredicts twice per iteration.
* :class:`CounterStridePredictor` — the stride is only replaced when a
  saturating success/failure counter falls below a threshold (the policy of
  Gonzalez & Gonzalez cited by the paper).  One misprediction per iteration
  of a repeated stride sequence.
* :class:`TwoDeltaStridePredictor` — the two-delta method of Eickemeyer &
  Vassiliadis: stride ``s1`` always tracks the most recent difference, and
  the prediction stride ``s2`` is updated only when the same ``s1`` occurs
  twice in a row.  This is the ``s2`` configuration the paper simulates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import NO_PREDICTION, Prediction, ValuePredictor
from repro.errors import PredictorConfigError
from repro.isa.opcodes import Category
from repro.isa.registers import wrap_value


@dataclass
class _StrideEntry:
    """Per-PC state shared by all stride predictor variants."""

    last_value: int
    stride: int | None = None
    # Extra fields used by specific policies.
    counter: int = 0
    transient_stride: int | None = None


class _StridePredictorBase(ValuePredictor):
    """Shared prediction logic: predict ``last_value + stride``."""

    def __init__(self) -> None:
        super().__init__()
        self._table: dict[int, _StrideEntry] = {}

    def predict(self, pc: int, category: Category | None = None) -> Prediction:
        entry = self._table.get(pc)
        if entry is None:
            return NO_PREDICTION
        if entry.stride is None:
            # Only one value seen so far: fall back to last-value behaviour,
            # which is what a hardware stride table with an invalid stride
            # field would do (stride treated as zero).
            return Prediction(entry.last_value)
        return Prediction(wrap_value(entry.last_value + entry.stride))

    def table_entries(self) -> int:
        return len(self._table)

    def storage_cells(self) -> int:
        return 2 * len(self._table)

    def _reset_tables(self) -> None:
        self._table.clear()


class SimpleStridePredictor(_StridePredictorBase):
    """Always-update stride prediction (no hysteresis)."""

    name = "stride"

    def update(self, pc: int, actual: int, category: Category | None = None) -> None:
        entry = self._table.get(pc)
        if entry is None:
            self._table[pc] = _StrideEntry(last_value=actual)
            return
        entry.stride = wrap_value(actual - entry.last_value)
        entry.last_value = actual


class CounterStridePredictor(_StridePredictorBase):
    """Stride prediction gated by a saturating success/failure counter.

    The stride field is replaced by the newly observed delta only when the
    counter (incremented on correct predictions, decremented on incorrect
    ones) is below ``threshold``.
    """

    name = "stride-counter"

    def __init__(self, counter_max: int = 3, threshold: int = 2) -> None:
        super().__init__()
        if counter_max < 1:
            raise PredictorConfigError("counter_max must be at least 1")
        if not 0 < threshold <= counter_max:
            raise PredictorConfigError("threshold must be in (0, counter_max]")
        self.counter_max = counter_max
        self.threshold = threshold

    def update(self, pc: int, actual: int, category: Category | None = None) -> None:
        entry = self._table.get(pc)
        if entry is None:
            self._table[pc] = _StrideEntry(last_value=actual)
            return
        observed_stride = wrap_value(actual - entry.last_value)
        predicted = None
        if entry.stride is not None:
            predicted = wrap_value(entry.last_value + entry.stride)
        elif entry.stride is None:
            predicted = entry.last_value
        if predicted == actual:
            entry.counter = min(self.counter_max, entry.counter + 1)
        else:
            entry.counter = max(0, entry.counter - 1)
            if entry.counter < self.threshold:
                entry.stride = observed_stride
        if entry.stride is None:
            entry.stride = observed_stride
        entry.last_value = actual

    def storage_cells(self) -> int:
        return 3 * len(self._table)


class TwoDeltaStridePredictor(_StridePredictorBase):
    """The two-delta stride method (the paper's ``s2`` configuration).

    Two strides are kept per entry: ``s1`` (``transient_stride``) always
    tracks the difference of the two most recent values; the prediction
    stride ``s2`` (``stride``) is replaced by ``s1`` only when the same
    ``s1`` value is observed twice in a row.  This yields one misprediction
    per iteration of a repeated stride sequence and avoids perturbing the
    prediction stride on isolated irregular deltas.
    """

    name = "s2"

    def update(self, pc: int, actual: int, category: Category | None = None) -> None:
        entry = self._table.get(pc)
        if entry is None:
            self._table[pc] = _StrideEntry(last_value=actual)
            return
        observed_stride = wrap_value(actual - entry.last_value)
        if entry.transient_stride is not None and entry.transient_stride == observed_stride:
            entry.stride = observed_stride
        entry.transient_stride = observed_stride
        if entry.stride is None:
            # First delta ever seen: adopt it so prediction can begin after
            # two observed values, as in the paper's learning-time analysis.
            entry.stride = observed_stride
        entry.last_value = actual

    def storage_cells(self) -> int:
        return 3 * len(self._table)
