"""Registry of named predictor configurations.

Experiments, benchmarks and the command line refer to predictors by short
names (``"l"``, ``"s2"``, ``"fcm3"``, ...).  The registry maps those names to
factories producing fresh predictor instances.  The set
:data:`PAPER_PREDICTORS` lists the five configurations simulated throughout
the paper's evaluation (Figures 3-7).
"""

from __future__ import annotations

from typing import Callable

from repro.core.base import ValuePredictor
from repro.core.blending import BlendedFcmPredictor
from repro.core.fcm import FcmPredictor
from repro.core.hybrid import CategoryChooser, HybridPredictor, OracleChooser, PcChooser
from repro.core.last_value import LastValuePredictor
from repro.core.stride import (
    CounterStridePredictor,
    SimpleStridePredictor,
    TwoDeltaStridePredictor,
)
from repro.errors import PredictorConfigError, UnknownPredictorError
from repro.isa.opcodes import Category

PredictorFactory = Callable[[], ValuePredictor]

#: The predictor line-up used in the paper's main results (Figures 3-7):
#: last value (always update), two-delta stride, and blended FCM of orders
#: 1, 2 and 3.
PAPER_PREDICTORS: tuple[str, ...] = ("l", "s2", "fcm1", "fcm2", "fcm3")

_REGISTRY: dict[str, PredictorFactory] = {}


def register_predictor(name: str, factory: PredictorFactory, overwrite: bool = False) -> None:
    """Register a new named predictor configuration.

    Raises :class:`PredictorConfigError` if the name is already taken and
    ``overwrite`` is not set.
    """
    if not overwrite and name in _REGISTRY:
        raise PredictorConfigError(f"predictor name {name!r} is already registered")
    _REGISTRY[name] = factory


def available_predictors() -> tuple[str, ...]:
    """Return all registered predictor names, sorted."""
    return tuple(sorted(_REGISTRY))


def registered_factory(name: str) -> PredictorFactory | None:
    """Return the registered factory for ``name``, or ``None``.

    Dynamic ``fcmN*`` spellings resolve to ``None`` as well: they have no
    registry entry to rebind, so callers may treat them as immutable.  The
    returned object doubles as a cache-validity token — re-registering a
    name (``overwrite=True``) swaps the factory object and thereby
    invalidates anything keyed on the old one.
    """
    return _REGISTRY.get(name)


def create_predictor(name: str) -> ValuePredictor:
    """Instantiate a fresh predictor by registered name.

    In addition to the registered names, ``fcmN`` / ``fcmN-single`` /
    ``fcmN-small`` are accepted for any non-negative order ``N``.
    """
    factory = _REGISTRY.get(name)
    if factory is not None:
        return factory()
    dynamic = _dynamic_fcm(name)
    if dynamic is not None:
        return dynamic
    raise UnknownPredictorError(
        f"unknown predictor {name!r}; known names: {', '.join(available_predictors())}"
    )


def _dynamic_fcm(name: str) -> ValuePredictor | None:
    """Support arbitrary-order fcm names without pre-registering each order."""
    for suffix, builder in (
        ("-single", lambda order: FcmPredictor(order=order)),
        ("-small", lambda order: BlendedFcmPredictor(order=order, counter_max=16)),
        ("-full", lambda order: BlendedFcmPredictor(order=order, update_policy="full")),
        ("", lambda order: BlendedFcmPredictor(order=order)),
    ):
        if name.startswith("fcm") and name.endswith(suffix):
            digits = name[len("fcm") : len(name) - len(suffix) if suffix else len(name)]
            if digits.isdigit():
                return builder(int(digits))
    return None


def _make_stride_fcm_hybrid() -> ValuePredictor:
    components = [TwoDeltaStridePredictor(), BlendedFcmPredictor(order=3)]
    return HybridPredictor(components, PcChooser(num_components=2), name="hybrid-s2-fcm3")


def _make_category_hybrid() -> ValuePredictor:
    components = [TwoDeltaStridePredictor(), BlendedFcmPredictor(order=3)]
    mapping = {
        Category.ADDSUB: 0,
        Category.LOADS: 1,
        Category.LOGIC: 1,
        Category.SHIFT: 1,
        Category.SET: 1,
        Category.MULTDIV: 0,
        Category.LUI: 0,
        Category.OTHER: 0,
    }
    return HybridPredictor(
        components, CategoryChooser(mapping, default=1), name="hybrid-type-s2-fcm3"
    )


def _make_oracle_hybrid() -> ValuePredictor:
    components = [
        LastValuePredictor(),
        TwoDeltaStridePredictor(),
        BlendedFcmPredictor(order=3),
    ]
    return HybridPredictor(components, OracleChooser(), name="hybrid-oracle-l-s2-fcm3")


def _register_builtin_predictors() -> None:
    register_predictor("l", LastValuePredictor)
    register_predictor("last-value", LastValuePredictor)
    register_predictor("lv-counter", lambda: LastValuePredictor(hysteresis="counter"))
    register_predictor("lv-consecutive", lambda: LastValuePredictor(hysteresis="consecutive"))
    register_predictor("s", SimpleStridePredictor)
    register_predictor("stride", SimpleStridePredictor)
    register_predictor("stride-counter", CounterStridePredictor)
    register_predictor("s2", TwoDeltaStridePredictor)
    for order in range(0, 9):
        register_predictor(f"fcm{order}", lambda order=order: BlendedFcmPredictor(order=order))
    register_predictor("hybrid-s2-fcm3", _make_stride_fcm_hybrid)
    register_predictor("hybrid-type-s2-fcm3", _make_category_hybrid)
    register_predictor("hybrid-oracle", _make_oracle_hybrid)


_register_builtin_predictors()
