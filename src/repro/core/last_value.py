"""Last value prediction (Section 2.1 of the paper).

The simplest computational predictor: the identity function on the previous
value.  The paper's simulations use the *always-update* policy (no
hysteresis); the two hysteresis variants described in the text are also
implemented so they can be compared in ablation benchmarks:

* ``counter`` hysteresis — a saturating counter per entry, incremented on a
  correct prediction and decremented on an incorrect one; the stored value is
  replaced only when the counter is below a threshold.  This changes the
  prediction *after* incorrect behaviour, even if that behaviour is
  inconsistent.
* ``consecutive`` hysteresis — the stored value is replaced only after the
  new value has been observed a given number of times in succession, i.e. the
  prediction changes only once the new behaviour is consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import NO_PREDICTION, Prediction, ValuePredictor
from repro.errors import PredictorConfigError
from repro.isa.opcodes import Category

#: Supported hysteresis policies.
HYSTERESIS_POLICIES = ("always", "counter", "consecutive")


@dataclass
class _LastValueEntry:
    """Per-PC state for last value prediction."""

    value: int
    counter: int = 0
    candidate: int | None = None
    candidate_run: int = 0


class LastValuePredictor(ValuePredictor):
    """Predict that an instruction repeats its most recent value.

    Parameters
    ----------
    hysteresis:
        One of ``"always"`` (replace on every update — the paper's simulated
        configuration), ``"counter"`` or ``"consecutive"``.
    counter_max:
        Saturation limit of the hysteresis counter (``counter`` policy).
    counter_threshold:
        The stored value is replaced only when the counter is strictly below
        this threshold (``counter`` policy).
    required_run:
        Number of consecutive occurrences of a new value required before the
        stored value is replaced (``consecutive`` policy).
    """

    name = "last-value"

    def __init__(
        self,
        hysteresis: str = "always",
        counter_max: int = 3,
        counter_threshold: int = 2,
        required_run: int = 2,
    ) -> None:
        super().__init__()
        if hysteresis not in HYSTERESIS_POLICIES:
            raise PredictorConfigError(
                f"unknown hysteresis policy {hysteresis!r}; expected one of {HYSTERESIS_POLICIES}"
            )
        if counter_max < 1:
            raise PredictorConfigError("counter_max must be at least 1")
        if not 0 < counter_threshold <= counter_max:
            raise PredictorConfigError("counter_threshold must be in (0, counter_max]")
        if required_run < 1:
            raise PredictorConfigError("required_run must be at least 1")
        self.hysteresis = hysteresis
        self.counter_max = counter_max
        self.counter_threshold = counter_threshold
        self.required_run = required_run
        if hysteresis != "always":
            self.name = f"last-value-{hysteresis}"
        self._table: dict[int, _LastValueEntry] = {}

    # ------------------------------------------------------------------ #
    # ValuePredictor interface
    # ------------------------------------------------------------------ #
    def predict(self, pc: int, category: Category | None = None) -> Prediction:
        entry = self._table.get(pc)
        if entry is None:
            return NO_PREDICTION
        return Prediction(entry.value)

    def update(self, pc: int, actual: int, category: Category | None = None) -> None:
        entry = self._table.get(pc)
        if entry is None:
            self._table[pc] = _LastValueEntry(value=actual)
            return
        if self.hysteresis == "always":
            entry.value = actual
        elif self.hysteresis == "counter":
            self._update_counter(entry, actual)
        else:
            self._update_consecutive(entry, actual)

    def table_entries(self) -> int:
        return len(self._table)

    def storage_cells(self) -> int:
        # One value plus (for hysteresis policies) one counter per entry.
        cells_per_entry = 1 if self.hysteresis == "always" else 2
        return cells_per_entry * len(self._table)

    def _reset_tables(self) -> None:
        self._table.clear()

    # ------------------------------------------------------------------ #
    # Hysteresis policies
    # ------------------------------------------------------------------ #
    def _update_counter(self, entry: _LastValueEntry, actual: int) -> None:
        if entry.value == actual:
            entry.counter = min(self.counter_max, entry.counter + 1)
            return
        entry.counter = max(0, entry.counter - 1)
        if entry.counter < self.counter_threshold:
            entry.value = actual
            entry.counter = 0

    def _update_consecutive(self, entry: _LastValueEntry, actual: int) -> None:
        if entry.value == actual:
            entry.candidate = None
            entry.candidate_run = 0
            return
        if entry.candidate == actual:
            entry.candidate_run += 1
        else:
            entry.candidate = actual
            entry.candidate_run = 1
        if entry.candidate_run >= self.required_run:
            entry.value = actual
            entry.candidate = None
            entry.candidate_run = 0
