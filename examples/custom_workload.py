"""Bringing your own workload: predictability of a custom kernel.

The paper's methodology is not tied to SPEC95: any program that can be
expressed against the ISA substrate can be traced and analysed.  This example
builds a small pointer-chasing + reduction kernel with the
:class:`ProgramBuilder`, collects its value trace, classifies the per-PC value
sequences into the Section 1.1 taxonomy, and reports how well each predictor
model copes.

Run with::

    python examples/custom_workload.py
"""

from __future__ import annotations

import sys
from collections import Counter
from pathlib import Path

# Allow running from a fresh clone without installing: put src/ on the path.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import PAPER_PREDICTORS, classify_sequence, simulate_trace
from repro.isa.memory import SparseMemory
from repro.isa.program import ProgramBuilder
from repro.reporting.tables import format_table
from repro.trace.collector import collect_trace

LIST_BASE = 0x1_0000
ARRAY_BASE = 0x8_0000
NODES = 64
SWEEPS = 8


def build_program():
    """A linked-list walk (non-stride addresses) plus an array reduction."""
    b = ProgramBuilder("custom-kernel")
    r_sweep, r_sweeps, r_ptr, r_value = 1, 2, 3, 4
    r_sum, r_i, r_addr, r_cond = 5, 6, 7, 8

    b.li(r_sweep, 0, "sweep counter")
    b.li(r_sweeps, SWEEPS, "sweeps")
    sweep_loop = b.label("sweep_loop")
    done = b.fresh_label("done")
    b.slt(r_cond, r_sweep, r_sweeps, "sweeps left?")
    b.beq(r_cond, 0, done)

    # Pointer chase over the shuffled linked list.
    b.li(r_ptr, LIST_BASE, "list head")
    walk = b.fresh_label("walk")
    walk_done = b.fresh_label("walk_done")
    b.label(walk)
    b.beq(r_ptr, 0, walk_done)
    b.lw(r_value, r_ptr, 0, "payload")
    b.add(r_sum, r_sum, r_value, "accumulate payload")
    b.lw(r_ptr, r_ptr, 8, "follow next pointer")
    b.j(walk)
    b.label(walk_done)

    # Strided array reduction.
    b.li(r_i, 0, "array index")
    reduce_loop = b.fresh_label("reduce")
    reduce_done = b.fresh_label("reduce_done")
    b.label(reduce_loop)
    b.slti(r_cond, r_i, NODES, "elements left?")
    b.beq(r_cond, 0, reduce_done)
    b.sll(r_addr, r_i, 3, "offset")
    b.addi(r_addr, r_addr, ARRAY_BASE, "address")
    b.lw(r_value, r_addr, 0, "element")
    b.add(r_sum, r_sum, r_value, "accumulate")
    b.addi(r_i, r_i, 1, "next element")
    b.j(reduce_loop)
    b.label(reduce_done)

    b.addi(r_sweep, r_sweep, 1, "next sweep")
    b.j(sweep_loop)
    b.label(done)
    return b.build()


def build_memory():
    import random

    rng = random.Random(42)
    memory = SparseMemory()
    order = list(range(NODES))
    rng.shuffle(order)
    for position, node in enumerate(order):
        address = LIST_BASE + node * 16
        memory.store_word(address, rng.randrange(1, 100))
        next_node = order[position + 1] if position + 1 < NODES else None
        memory.store_word(address + 8, 0 if next_node is None else LIST_BASE + next_node * 16)
    for index in range(NODES):
        memory.store_word(ARRAY_BASE + index * 8, index * 3)
    return memory


def main() -> None:
    program = build_program()
    trace, execution = collect_trace(program, memory=build_memory())
    print(
        f"custom kernel: {execution.retired_instructions} dynamic instructions, "
        f"{len(trace)} predicted\n"
    )

    # Classify the value sequence each static instruction produces.
    classes = Counter(
        classify_sequence(values).value for values in trace.values_by_pc().values() if values
    )
    rows = [[label, count] for label, count in classes.most_common()]
    print(format_table(["sequence class", "static instructions"], rows,
                       title="Per-PC value sequence classes (Section 1.1 taxonomy)"))
    print()

    result = simulate_trace(trace, PAPER_PREDICTORS)
    rows = [[name, result.results[name].accuracy] for name in result.predictor_names]
    print(format_table(["predictor", "accuracy %"], rows, title="Predictability of the custom kernel"))
    print(
        "\nThe repeated pointer chase is invisible to stride prediction but, because "
        "the same chain repeats every sweep, the context-based predictor learns it."
    )


if __name__ == "__main__":
    main()
