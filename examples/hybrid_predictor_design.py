"""Designing a hybrid predictor, following Section 4.2 of the paper.

The paper observes that (a) most correct predictions are shared between the
stride and fcm predictors, (b) fcm alone contributes a further ~20%, and
(c) that extra contribution is concentrated in a small fraction of static
instructions.  Those three facts motivate a hybrid: use the cheap stride
predictor by default and fcm only where it pays off.

This example reproduces that chain of reasoning on one benchmark:

1. run last-value, stride and fcm over a gcc trace and print the
   predicted-set correlation (Figure 8's data),
2. print how concentrated the fcm-over-stride improvement is (Figure 9), and
3. compare a PC-chooser hybrid and an oracle hybrid against the components.

Run with::

    python examples/hybrid_predictor_design.py
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running from a fresh clone without installing: put src/ on the path.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import get_workload, simulate_trace
from repro.reporting.tables import format_table
from repro.simulation.correlation import SUBSET_LABELS, correlation_breakdown
from repro.simulation.improvement import improvement_curve

BENCHMARK = "gcc"
SCALE = 0.5


def main() -> None:
    trace = get_workload(BENCHMARK).trace(scale=SCALE)
    print(f"{BENCHMARK}: {len(trace)} predicted instructions at scale {SCALE}\n")

    # --- Step 1: who predicts what? -------------------------------------- #
    base = simulate_trace(trace, ("l", "s2", "fcm3"))
    breakdown = correlation_breakdown(base)
    rows = [[label, breakdown.overall[label]] for label in SUBSET_LABELS]
    print(format_table(["subset", "% of predictions"], rows,
                       title="Predicted-set correlation (compare with Figure 8)"))
    print(
        f"\ncorrect by all three: {breakdown.fraction_all_three():.1f}%   "
        f"fcm only: {breakdown.fraction_only_fcm():.1f}%   "
        f"unpredicted: {breakdown.overall['np']:.1f}%\n"
    )

    # --- Step 2: where does the fcm advantage live? ----------------------- #
    curve = improvement_curve(base, fcm_name="fcm3", stride_name="s2")
    print(
        f"{curve.improving_static_instructions} static instructions improve under fcm; "
        f"the top 20% of them deliver {curve.improvement_at(20):.1f}% of the total "
        "improvement (compare with Figure 9)\n"
    )

    # --- Step 3: build the hybrid ------------------------------------------ #
    hybrid = simulate_trace(
        trace, ("s2", "fcm3", "hybrid-s2-fcm3", "hybrid-type-s2-fcm3", "hybrid-oracle")
    )
    rows = [[name, hybrid.results[name].accuracy] for name in hybrid.predictor_names]
    print(format_table(["predictor", "accuracy %"], rows,
                       title="Hybrid predictors vs their components"))
    print(
        "\nThe PC-chooser hybrid approaches the oracle bound while consulting the "
        "expensive fcm tables only for the instructions that need them."
    )


if __name__ == "__main__":
    main()
