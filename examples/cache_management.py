"""Cache management: size accounting, garbage collection, verification.

Run with::

    python examples/cache_management.py

The example populates a persistent result cache with a small campaign
(binary entries, the default), then walks the management surface that
``repro-vp cache`` exposes on the command line:

1. per-kind size accounting with :meth:`ResultCache.stats`,
2. a bit-identical warm rerun that performs zero work,
3. LRU garbage collection down to a byte budget with
   :meth:`ResultCache.gc`,
4. integrity checking with :meth:`ResultCache.verify`.

See ``docs/cache-layout.md`` for the on-disk contract.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

# Allow running from a fresh clone without installing: put src/ on the path.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.engine import ExecutionEngine
from repro.reporting.tables import format_table

SCALE = 0.1
BENCHMARKS = ("compress", "m88ksim", "perl")
PREDICTORS = ("l", "s2", "fcm2")


def populate(cache_dir: Path) -> ExecutionEngine:
    """Run a small campaign into ``cache_dir`` and return its engine."""
    print("=== 1. Cold campaign populating the cache (binary entries) ===")
    engine = ExecutionEngine(jobs=1, cache_dir=cache_dir, cache_format="binary")
    engine.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
    stats = engine.stats
    print(
        f"computed {stats.traces_computed} traces and "
        f"{stats.simulations_computed} simulations in {stats.total_seconds:.2f}s"
    )
    print()
    return engine


def show_stats(engine: ExecutionEngine, title: str) -> None:
    """Render the equivalent of ``repro-vp cache stats``."""
    stats = engine.cache.stats()
    rows = [
        [kind, kind_stats.entries, kind_stats.bytes]
        for kind, kind_stats in sorted(stats.kinds.items())
    ]
    print(format_table(["kind", "entries", "bytes"], rows, title=title))
    print(f"total: {stats.entries} entries, {stats.bytes} bytes")
    print()


def warm_rerun(cache_dir: Path) -> None:
    """A second engine sees every result in the cache."""
    print("=== 2. Warm rerun: everything served from the cache ===")
    engine = ExecutionEngine(jobs=1, cache_dir=cache_dir)
    engine.run(scale=SCALE, predictors=PREDICTORS, benchmarks=BENCHMARKS)
    stats = engine.stats
    print(
        f"computed {stats.tasks_computed} tasks, served {stats.tasks_cached} "
        f"from cache in {stats.total_seconds:.2f}s"
    )
    print()


def collect_garbage(engine: ExecutionEngine) -> None:
    """Bound the cache to half its current footprint, LRU-first."""
    print("=== 3. Garbage collection down to a byte budget ===")
    budget = engine.cache.stats().bytes // 2
    report = engine.cache.gc(max_bytes=budget)
    print(
        f"gc --max-bytes {budget}: removed {report.removed_entries} entries, "
        f"freed {report.freed_bytes} bytes; "
        f"{report.remaining_entries} entries, {report.remaining_bytes} bytes remain"
    )
    print()


def verify(engine: ExecutionEngine) -> None:
    """Deep-check every surviving entry."""
    print("=== 4. Integrity verification ===")
    report = engine.cache.verify()
    status = "all ok" if report.ok else f"{len(report.corrupt)} corrupt"
    print(f"checked {report.checked} entries: {status}")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-cache-") as directory:
        cache_dir = Path(directory) / "cache"
        engine = populate(cache_dir)
        show_stats(engine, f"Cache after the cold run ({cache_dir})")
        warm_rerun(cache_dir)
        collect_garbage(engine)
        show_stats(engine, "Cache after gc")
        verify(engine)


if __name__ == "__main__":
    main()
