"""Regenerate every table and figure of the paper in one run.

Run with::

    python examples/reproduce_paper.py [scale]

The optional ``scale`` argument (default 1.0) multiplies the synthetic
workloads' loop trip counts; larger scales take longer but move every
predictor deeper into steady state.  The output of this script is what
EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys
import time

from repro.reporting.experiments import ALL_EXPERIMENTS, run_experiment

#: Experiments that accept a scale parameter (the suite-wide ones).
_SCALED = {
    "table2", "table4", "table5", "table6", "table7",
    "figure3", "figure4_7", "figure8", "figure9", "figure10", "figure11",
}


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    started = time.time()
    for identifier in sorted(ALL_EXPERIMENTS):
        kwargs = {"scale": scale} if identifier in _SCALED else {}
        artifact = run_experiment(identifier, **kwargs)
        print(f"\n{'=' * 78}\n{identifier}: {artifact.title}\n{'=' * 78}")
        print(artifact.render())
    print(f"\nAll experiments regenerated in {time.time() - started:.1f}s at scale {scale}.")


if __name__ == "__main__":
    main()
