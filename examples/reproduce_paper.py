"""Reproduce the paper's deliverables through the committed artifact manifest.

Run with::

    python examples/reproduce_paper.py [--only SELECTOR ...] [--check]

This is the library-level twin of ``repro-vp reproduce``: it loads the
committed ``artifact/manifest.json`` (the single source of truth for what
"reproducing the paper" means), regenerates the selected deliverables into
an isolated ``results/<run-id>/`` directory, prints each rendered table or
figure, and — with ``--check`` — diffs the regenerated numbers cell by
cell against the committed goldens under ``artifact/expected/``.

See ``ARTIFACTS.md`` for the full deliverable-to-command map and
``docs/reproducing.md`` for the reproduction workflow.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running from a fresh clone without installing: put src/ on the path.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.artifact import load_manifest, reproduce  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        nargs="+",
        default=None,
        metavar="SELECTOR",
        help="deliverable identifiers (table2, figure3), the groups "
        "'tables'/'figures', or globs like 'table*' (default: everything)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="diff the regenerated numbers against the committed goldens "
        "and exit non-zero on any mismatch",
    )
    parser.add_argument(
        "--out",
        default="results",
        metavar="DIR",
        help="parent directory for the results/<run-id>/ directory",
    )
    args = parser.parse_args()

    manifest = load_manifest()
    report = reproduce(manifest, only=args.only, out_dir=args.out, check=args.check)
    for run in report.runs:
        print(f"\n{'=' * 78}\n{run.deliverable.identifier}: {run.artifact.title}\n{'=' * 78}")
        print(run.artifact.render())

    print(f"\nresults directory: {report.run_dir}")
    print(f"manifest: {manifest.path} ({len(report.runs)} deliverable(s) reproduced)")
    if report.check_report is not None:
        print(report.check_report.render())
        return 0 if report.check_report.ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
