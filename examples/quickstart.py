"""Quickstart: value predictors on sequences and on a real workload trace.

Run with::

    python examples/quickstart.py

The example walks through the three layers of the library:

1. feed hand-written value sequences (Section 1.1 of the paper) to individual
   predictors and look at their learning behaviour,
2. trace a synthetic SPEC95int workload on the ISA substrate, and
3. simulate the paper's predictor line-up over that trace and print
   per-category accuracy, as Figures 3-7 do.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running from a fresh clone without installing: put src/ on the path.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import (
    PAPER_PREDICTORS,
    SequenceClass,
    create_predictor,
    generate_sequence,
    get_workload,
    measure_learning,
    simulate_trace,
)
from repro.isa.opcodes import REPORTED_CATEGORIES
from repro.reporting.tables import format_table


def sequence_demo() -> None:
    """Measure learning time / learning degree on the Section 1.1 sequences."""
    print("=== 1. Predictors on the paper's sequence classes ===")
    rows = []
    for sequence_class in SequenceClass:
        values = generate_sequence(sequence_class, length=64, period=4)
        row = [sequence_class.value]
        for name in ("l", "s2", "fcm3"):
            profile = measure_learning(create_predictor(name), values)
            row.append(profile.learning_time)
            row.append(profile.learning_degree)
        rows.append(row)
    headers = ["sequence", "L: LT", "L: LD%", "S2: LT", "S2: LD%", "FCM3: LT", "FCM3: LD%"]
    print(format_table(headers, rows, title="Learning behaviour (compare with Table 1)"))
    print()


def workload_demo() -> None:
    """Trace one benchmark and simulate the paper's predictors over it."""
    print("=== 2. Tracing the synthetic 'compress' workload ===")
    workload = get_workload("compress")
    trace = workload.trace(scale=0.5)
    stats = trace.statistics()
    print(
        f"collected {stats.predicted_instructions} predicted instructions out of "
        f"{stats.total_dynamic_instructions} dynamic instructions "
        f"({100 * stats.fraction_predicted:.1f}% predicted)"
    )
    print()

    print("=== 3. Simulating the paper's predictor line-up ===")
    result = simulate_trace(trace, PAPER_PREDICTORS)
    headers = ["predictor", "overall %"] + [category.value for category in REPORTED_CATEGORIES]
    rows = []
    for name in result.predictor_names:
        predictor_result = result.results[name]
        rows.append(
            [name, predictor_result.accuracy]
            + [predictor_result.category_accuracy(category) for category in REPORTED_CATEGORIES]
        )
    print(format_table(headers, rows, title="compress: prediction accuracy (compare with Figure 3)"))


def main() -> None:
    sequence_demo()
    workload_demo()


if __name__ == "__main__":
    main()
